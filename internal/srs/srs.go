// Package srs implements the Stop Restart Software of §4.1: a user-level
// checkpointing library that lets a running application checkpoint
// registered data, be stopped at an execution point, and be restarted later
// on a different processor configuration — transparently redistributing
// block-cyclic data from N to M processes. Checkpoints are held in IBP
// depots on the writers' local disks.
//
// An external component (the rescheduler) interacts with the Runtime
// Support System (RSS) daemon, which exists for the duration of the
// application execution and spans migrations.
package srs

import (
	"fmt"
	"sort"

	"grads/internal/faultinject"
	"grads/internal/ibp"
	"grads/internal/mpi"
	"grads/internal/resilience"
	"grads/internal/simcore"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Ckpt records one stored checkpoint blob. Replica, when non-nil, names a
// second depot holding a copy: the restore path falls back to it when the
// primary depot's node is down, which is what makes recovery from the crash
// of a checkpoint-holding node possible at all.
type Ckpt struct {
	Key     string
	Depot   *topology.Node
	Replica *topology.Node
	Bytes   float64
}

// RSS is the Runtime Support System daemon state. It is created where the
// user invokes the application manager, before the application starts, and
// survives across migrations.
type RSS struct {
	sim     *simcore.Sim
	storage *ibp.System
	app     string

	stopRequested bool
	resumeMarker  int
	ckpts         map[string]Ckpt
	migrations    int
	stopSignal    *simcore.Signal
	stoppedRanks  int
	expectedRanks int

	replicate bool
	retrier   *resilience.Retrier
}

// NewRSS creates the RSS daemon for one application execution. Checkpoint
// replication to a buddy depot is on by default (see SetReplication).
func NewRSS(sim *simcore.Sim, storage *ibp.System, appName string) *RSS {
	return &RSS{
		sim:        sim,
		storage:    storage,
		app:        appName,
		ckpts:      make(map[string]Ckpt),
		stopSignal: simcore.NewSignal(sim),
		replicate:  true,
	}
}

// SetReplication enables or disables the buddy-depot copy of every
// checkpoint. Without replication a crash of a node holding checkpoint
// data makes the data unreachable and recovery from that crash impossible.
func (r *RSS) SetReplication(on bool) { r.replicate = on }

// SetRetrier installs a retry policy around the RSS's IBP operations, so
// transient storage-service outages stall checkpoints instead of failing
// the application.
func (r *RSS) SetRetrier(rt *resilience.Retrier) { r.retrier = rt }

// RequestStop asks every attached process to checkpoint and terminate at
// its next SRS check point (called by the rescheduler).
func (r *RSS) RequestStop(expectedRanks int) {
	r.stopRequested = true
	r.expectedRanks = expectedRanks
	r.stoppedRanks = 0
	r.stopSignal.Broadcast() // wake WaitAllStopped callers parked pre-request
}

// ClearStop resets the stop flag for the restarted execution and counts a
// migration.
func (r *RSS) ClearStop() {
	r.stopRequested = false
	r.migrations++
}

// StopRequested reports whether a stop is pending.
func (r *RSS) StopRequested() bool { return r.stopRequested }

// Migrations returns how many migrations this RSS has spanned.
func (r *RSS) Migrations() int { return r.migrations }

// SetResumeMarker records application progress (e.g. the next panel index)
// for the restarted run.
func (r *RSS) SetResumeMarker(m int) { r.resumeMarker = m }

// ResumeMarker returns the recorded progress marker.
func (r *RSS) ResumeMarker() int { return r.resumeMarker }

// WaitAllStopped blocks until a stop has been requested and every expected
// rank has checkpointed and acknowledged it.
func (r *RSS) WaitAllStopped(p *simcore.Proc) error {
	for !r.stopRequested || r.stoppedRanks < r.expectedRanks {
		if err := r.stopSignal.Wait(p); err != nil {
			return err
		}
	}
	return nil
}

// ackStopped is called by a Lib after its final checkpoint.
func (r *RSS) ackStopped() {
	r.stoppedRanks++
	if r.stoppedRanks >= r.expectedRanks {
		r.stopSignal.Broadcast()
	}
}

// register records a stored checkpoint.
func (r *RSS) register(c Ckpt) { r.ckpts[c.Key] = c }

// replicateAsync spawns a data-mover process copying the checkpoint just
// written on node to a buddy depot. The replica is attached to the
// registered checkpoint only if the entry is still the same epoch when the
// copy completes (a newer write or a prune invalidates the copy).
func (r *RSS) replicateAsync(key string, node *topology.Node, bytes float64) {
	r.sim.Spawn("srs-replica:"+key, func(cp *simcore.Proc) {
		buddy := r.storage.ReplicaFor(node)
		if buddy == nil {
			return
		}
		if err := r.storage.Store(cp, node, buddy, key, bytes); err != nil {
			r.sim.Tracef("srs: replica of %s skipped (%v)", key, err)
			return
		}
		c, ok := r.ckpts[key]
		if !ok || c.Depot != node || c.Bytes != bytes {
			r.storage.Delete(buddy.Name(), key) // stale copy, drop it
			return
		}
		c.Replica = buddy
		r.ckpts[key] = c
	})
}

// Checkpoints returns all registered checkpoints sorted by key.
func (r *RSS) Checkpoints() []Ckpt {
	out := make([]Ckpt, 0, len(r.ckpts))
	for _, c := range r.ckpts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// TotalCheckpointBytes returns the volume of all registered checkpoints.
func (r *RSS) TotalCheckpointBytes() float64 {
	sum := 0.0
	for _, c := range r.ckpts {
		sum += c.Bytes
	}
	return sum
}

// DropCheckpoints deletes all registered checkpoints (after a successful
// restart has consumed them).
func (r *RSS) DropCheckpoints() {
	for k, c := range r.ckpts {
		r.storage.Delete(c.Depot.Name(), k)
		if c.Replica != nil {
			r.storage.Delete(c.Replica.Name(), k)
		}
		delete(r.ckpts, k)
	}
}

// PruneExcept deletes every registered checkpoint whose key is not in keep.
// The committing rank calls it after a complete checkpoint set is written,
// so a restore never mixes blobs from different epochs or process counts.
func (r *RSS) PruneExcept(keep []string) {
	keepSet := make(map[string]bool, len(keep))
	for _, k := range keep {
		keepSet[k] = true
	}
	for k, c := range r.ckpts {
		if !keepSet[k] {
			r.storage.Delete(c.Depot.Name(), k)
			if c.Replica != nil {
				r.storage.Delete(c.Replica.Name(), k)
			}
			delete(r.ckpts, k)
		}
	}
}

// Lib is the per-process SRS handle the application calls.
type Lib struct {
	rss *RSS
	ctx *mpi.Ctx

	writeTime float64
	readTime  float64
}

// Attach binds the calling application process to the RSS daemon,
// performing SRS initialization.
func Attach(rss *RSS, ctx *mpi.Ctx) *Lib { return &Lib{rss: rss, ctx: ctx} }

// NeedStop reports whether the process should checkpoint and terminate
// (the srs_check call of the paper).
func (l *Lib) NeedStop() bool { return l.rss.StopRequested() }

// CheckpointWriteTime returns the virtual time this process has spent
// writing checkpoints.
func (l *Lib) CheckpointWriteTime() float64 { return l.writeTime }

// CheckpointReadTime returns the virtual time spent reading checkpoints.
func (l *Lib) CheckpointReadTime() float64 { return l.readTime }

// StoreCheckpoint writes bytes of user data under key to the IBP depot on
// the process's own node ("checkpoints are written to IBP storage on local
// disks"), copies it to a buddy depot when replication is on, and registers
// it with the RSS. A failed replica write degrades to an unreplicated
// checkpoint rather than failing the application.
func (l *Lib) StoreCheckpoint(key string, bytes float64) error {
	node := l.ctx.Node()
	p := l.ctx.Proc()
	start := l.ctx.Now()
	err := l.rss.retrier.Do(p, "ibp.store", func() error {
		return l.rss.storage.Store(p, node, node, key, bytes)
	})
	l.writeTime += l.ctx.Now() - start
	if err != nil {
		return err
	}
	l.rss.register(Ckpt{Key: key, Depot: node, Bytes: bytes})
	if l.rss.replicate {
		// Copy to a buddy depot asynchronously (an IBP data mover), off
		// the application's critical path: checkpoint writes stay
		// local-disk cheap (Figure 3), while the replica is what restores
		// fall back to when the writer's node later crashes. Until the
		// copy lands there is a window with no replica — exactly the
		// vulnerability window a real lazy replication scheme has.
		l.rss.replicateAsync(key, node, bytes)
	}
	if tel := l.rss.sim.Telemetry(); tel != nil {
		tel.Counter("srs", "ckpt_writes").Inc()
		tel.Histogram("srs", "ckpt_write_seconds").Observe(l.ctx.Now() - start)
		tel.Emit(telemetry.Event{
			Type: telemetry.EvCkptWrite, Comp: "srs:" + l.rss.app, Name: key,
			Dur:  l.ctx.Now() - start,
			Args: []telemetry.Arg{telemetry.F("bytes", bytes), telemetry.S("depot", node.Name())},
		})
	}
	return nil
}

// AckStopped tells the RSS this process has finished its final checkpoint
// and is terminating.
func (l *Lib) AckStopped() { l.rss.ackStopped() }

// RestoreShare reads this process's share of the previous execution's
// checkpoint data onto its current node: 1/nProcs of every registered blob,
// pulled from the depot where it was written. This models the block-cyclic
// N-to-M redistribution (every new process touches every old depot, and
// data written at the old site crosses the network to the new one).
// It returns the bytes read.
func (l *Lib) RestoreShare(myRank, nProcs int) (float64, error) {
	if nProcs <= 0 {
		return 0, fmt.Errorf("srs: bad process count %d", nProcs)
	}
	start := l.ctx.Now()
	defer func() { l.readTime += l.ctx.Now() - start }()
	p := l.ctx.Proc()
	total := 0.0
	for _, c := range l.rss.Checkpoints() {
		c := c
		share := c.Bytes / float64(nProcs)
		var n float64
		err := l.rss.retrier.Do(p, "ibp.retrieve", func() error {
			var rerr error
			n, rerr = l.rss.storage.RetrievePartial(p, c.Depot, l.ctx.Node(), c.Key, share)
			// Primary depot unreachable (its node crashed): fall back to
			// the replica before burning a retry attempt.
			if rerr != nil && faultinject.Retryable(rerr) && c.Replica != nil && !c.Replica.Down() {
				n, rerr = l.rss.storage.RetrievePartial(p, c.Replica, l.ctx.Node(), c.Key, share)
			}
			return rerr
		})
		if err != nil {
			return total, err
		}
		total += n
	}
	if tel := l.rss.sim.Telemetry(); tel != nil {
		tel.Counter("srs", "ckpt_reads").Inc()
		tel.Histogram("srs", "ckpt_read_seconds").Observe(l.ctx.Now() - start)
		tel.Emit(telemetry.Event{
			Type: telemetry.EvCkptRead, Comp: "srs:" + l.rss.app,
			Dur:  l.ctx.Now() - start,
			Args: []telemetry.Arg{telemetry.F("bytes", total), telemetry.I("rank", myRank), telemetry.I("nprocs", nProcs)},
		})
	}
	return total, nil
}
