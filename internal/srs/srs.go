// Package srs implements the Stop Restart Software of §4.1: a user-level
// checkpointing library that lets a running application checkpoint
// registered data, be stopped at an execution point, and be restarted later
// on a different processor configuration — transparently redistributing
// block-cyclic data from N to M processes. Checkpoints are held in IBP
// depots on the writers' local disks.
//
// Every checkpoint blob carries a writer-side checksum and an epoch tag
// (one epoch per committed checkpoint round), and the RSS retains a short
// lineage of past epochs. A restore therefore never trusts the latest blob
// blindly: it plans against the newest epoch whose every blob still
// verifies — falling back from a primary depot to its buddy replica, and
// from a corrupt generation to an older one — before any data moves.
//
// An external component (the rescheduler) interacts with the Runtime
// Support System (RSS) daemon, which exists for the duration of the
// application execution and spans migrations.
package srs

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"grads/internal/faultinject"
	"grads/internal/ibp"
	"grads/internal/mpi"
	"grads/internal/resilience"
	"grads/internal/simcore"
	"grads/internal/telemetry"
	"grads/internal/topology"
)

// Ckpt records one stored checkpoint blob. Replica, when non-nil, names a
// second depot holding a copy: the restore path falls back to it when the
// primary depot's node is down or its blob fails verification, which is
// what makes recovery from the crash (or rot) of a checkpoint-holding node
// possible at all.
type Ckpt struct {
	Key     string
	Epoch   int    // checkpoint round the blob belongs to
	Sum     uint64 // writer checksum, verified before every read
	Depot   *topology.Node
	Replica *topology.Node
	Bytes   float64
}

// epochRec is one sealed checkpoint round: the progress marker it restores
// to and the exact key set a consistent restore of it must read.
type epochRec struct {
	marker int
	keys   []string // sorted
}

// DefaultKeepGenerations is how many committed checkpoint generations the
// RSS retains per key: the current one plus one fallback.
const DefaultKeepGenerations = 2

// RSS is the Runtime Support System daemon state. It is created where the
// user invokes the application manager, before the application starts, and
// survives across migrations.
type RSS struct {
	sim     *simcore.Sim
	storage *ibp.System
	app     string

	stopRequested bool
	resumeMarker  int
	ckpts         map[string][]Ckpt // key -> lineage, newest epoch first
	migrations    int
	stopSignal    *simcore.Signal
	stoppedRanks  int
	expectedRanks int

	writeEpoch   int              // epoch being written (sealed by Commit)
	epochs       map[int]epochRec // sealed rounds within the keep window
	keepGens     int
	restoreEpoch int // epoch chosen by PlanRestore; 0 = newest-per-key

	replicate     bool
	retrier       *resilience.Retrier
	restoreBudget float64 // shared deadline over one restore's hops (0 = none)

	corruptDetected int // blobs that failed verification and were skipped
	corruptServed   int // reads that returned bytes failing post-read verify (must stay 0)
	lineageFalls    int // restores planned against an older epoch
}

// NewRSS creates the RSS daemon for one application execution. Checkpoint
// replication to a buddy depot is on by default (see SetReplication).
func NewRSS(sim *simcore.Sim, storage *ibp.System, appName string) *RSS {
	return &RSS{
		sim:        sim,
		storage:    storage,
		app:        appName,
		ckpts:      make(map[string][]Ckpt),
		stopSignal: simcore.NewSignal(sim),
		replicate:  true,
		writeEpoch: 1,
		epochs:     make(map[int]epochRec),
		keepGens:   DefaultKeepGenerations,
	}
}

// SetReplication enables or disables the buddy-depot copy of every
// checkpoint. Without replication a crash of a node holding checkpoint
// data makes the data unreachable and recovery from that crash impossible.
func (r *RSS) SetReplication(on bool) { r.replicate = on }

// SetRetrier installs a retry policy around the RSS's IBP operations, so
// transient storage-service outages stall checkpoints instead of failing
// the application.
func (r *RSS) SetRetrier(rt *resilience.Retrier) { r.retrier = rt }

// SetRestoreBudget bounds one restore (all of a rank's checkpoint reads
// together) to seconds of virtual time: the deadline propagates across
// every hop of the multi-blob read instead of granting each blob a fresh
// timeout. Non-positive disables the bound (the default).
func (r *RSS) SetRestoreBudget(seconds float64) { r.restoreBudget = seconds }

// SetKeepGenerations sets how many committed checkpoint generations are
// retained for lineage fallback (minimum 1; default 2).
func (r *RSS) SetKeepGenerations(n int) {
	if n < 1 {
		n = 1
	}
	r.keepGens = n
}

// CorruptDetected returns how many checkpoint blobs failed checksum
// verification and were skipped in favor of a replica or older generation.
func (r *RSS) CorruptDetected() int { return r.corruptDetected }

// CorruptServed returns how many reads handed back data that failed the
// post-read verification. The restore path re-verifies after every read,
// so this staying zero is the "no restore from a corrupt generation"
// invariant the chaos soak asserts.
func (r *RSS) CorruptServed() int { return r.corruptServed }

// LineageFallbacks returns how many restores were planned against an older
// generation because the newest one had an unverifiable blob.
func (r *RSS) LineageFallbacks() int { return r.lineageFalls }

// RequestStop asks every attached process to checkpoint and terminate at
// its next SRS check point (called by the rescheduler).
func (r *RSS) RequestStop(expectedRanks int) {
	r.stopRequested = true
	r.expectedRanks = expectedRanks
	r.stoppedRanks = 0
	r.stopSignal.Broadcast() // wake WaitAllStopped callers parked pre-request
}

// ClearStop resets the stop flag for the restarted execution and counts a
// migration.
func (r *RSS) ClearStop() {
	r.stopRequested = false
	r.migrations++
}

// StopRequested reports whether a stop is pending.
func (r *RSS) StopRequested() bool { return r.stopRequested }

// Migrations returns how many migrations this RSS has spanned.
func (r *RSS) Migrations() int { return r.migrations }

// SetResumeMarker records application progress (e.g. the next panel index)
// for the restarted run.
func (r *RSS) SetResumeMarker(m int) { r.resumeMarker = m }

// ResumeMarker returns the recorded progress marker.
func (r *RSS) ResumeMarker() int { return r.resumeMarker }

// WaitAllStopped blocks until a stop has been requested and every expected
// rank has checkpointed and acknowledged it.
func (r *RSS) WaitAllStopped(p *simcore.Proc) error {
	for !r.stopRequested || r.stoppedRanks < r.expectedRanks {
		if err := r.stopSignal.Wait(p); err != nil {
			return err
		}
	}
	return nil
}

// ackStopped is called by a Lib after its final checkpoint.
func (r *RSS) ackStopped() {
	r.stoppedRanks++
	if r.stoppedRanks >= r.expectedRanks {
		r.stopSignal.Broadcast()
	}
}

// blobKey is the storage key of one (key, epoch) blob, namespaced by the
// owning application: depots are shared infrastructure, and two jobs using
// the same logical key (every task farm calls rank 0's state "farm.r0ofN")
// must never clobber each other's blobs. Epochs coexist in the depots,
// which is what makes lineage fallback possible.
func (r *RSS) blobKey(key string, epoch int) string {
	return fmt.Sprintf("%s/%s#e%d", r.app, key, epoch)
}

// checksum is the writer-side integrity sum of a checkpoint blob,
// deterministic in the blob's identity and size.
func (r *RSS) checksum(key string, epoch int, bytes float64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(r.app))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var buf [16]byte
	u := uint64(epoch)
	b := math.Float64bits(bytes)
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
		buf[8+i] = byte(b >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// register records a stored checkpoint at the head of its key's lineage.
// A re-write within the same epoch replaces the head; older generations
// beyond the keep window are dropped and their blobs deleted.
func (r *RSS) register(c Ckpt) {
	lineage := r.ckpts[c.Key]
	if len(lineage) > 0 && lineage[0].Epoch == c.Epoch {
		lineage[0] = c
	} else {
		lineage = append([]Ckpt{c}, lineage...)
	}
	for len(lineage) > r.keepGens {
		r.deleteBlob(lineage[len(lineage)-1])
		lineage = lineage[:len(lineage)-1]
	}
	r.ckpts[c.Key] = lineage
}

// lookup finds the lineage entry of (key, epoch).
func (r *RSS) lookup(key string, epoch int) (Ckpt, bool) {
	for _, c := range r.ckpts[key] {
		if c.Epoch == epoch {
			return c, true
		}
	}
	return Ckpt{}, false
}

// deleteBlob removes a checkpoint's primary and replica blobs from storage.
func (r *RSS) deleteBlob(c Ckpt) {
	bk := r.blobKey(c.Key, c.Epoch)
	r.storage.Delete(c.Depot.Name(), bk)
	if c.Replica != nil {
		r.storage.Delete(c.Replica.Name(), bk)
	}
}

// Commit seals the checkpoint round the ranks just wrote: it records the
// progress marker and the exact key set a consistent restore must read,
// advances the write epoch, and retires generations that fell out of the
// keep window. The committing rank calls it after a complete checkpoint
// set is written, so a restore never mixes blobs from different epochs or
// process counts.
func (r *RSS) Commit(marker int, keys []string) {
	e := r.writeEpoch
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	r.epochs[e] = epochRec{marker: marker, keys: sorted}
	r.resumeMarker = marker
	r.restoreEpoch = 0 // the next restore re-plans against the new round
	r.writeEpoch++

	floor := e - r.keepGens + 1
	for ep := range r.epochs {
		if ep < floor {
			delete(r.epochs, ep)
		}
	}
	for key, lineage := range r.ckpts {
		kept := lineage[:0]
		for _, c := range lineage {
			if c.Epoch >= floor {
				kept = append(kept, c)
			} else {
				r.deleteBlob(c)
			}
		}
		if len(kept) == 0 {
			delete(r.ckpts, key)
		} else {
			r.ckpts[key] = kept
		}
	}
}

// replicateAsync spawns a data-mover process copying the checkpoint just
// written on node to a buddy depot. The replica is attached to the
// registered checkpoint only if the entry is still the same epoch when the
// copy completes (a newer write or a prune invalidates the copy).
func (r *RSS) replicateAsync(ck Ckpt) {
	r.sim.Spawn("srs-replica:"+ck.Key, func(cp *simcore.Proc) {
		buddy := r.storage.ReplicaFor(ck.Depot)
		if buddy == nil {
			return
		}
		bk := r.blobKey(ck.Key, ck.Epoch)
		if err := r.storage.StoreSum(cp, ck.Depot, buddy, bk, ck.Bytes, ck.Sum); err != nil {
			r.sim.Tracef("srs: replica of %s skipped (%v)", ck.Key, err)
			return
		}
		c, ok := r.lookup(ck.Key, ck.Epoch)
		if !ok || c.Depot != ck.Depot || c.Bytes != ck.Bytes {
			r.storage.Delete(buddy.Name(), bk) // stale copy, drop it
			return
		}
		c.Replica = buddy
		for i, cur := range r.ckpts[ck.Key] {
			if cur.Epoch == ck.Epoch {
				r.ckpts[ck.Key][i] = c
				break
			}
		}
	})
}

// Checkpoints returns the newest registered checkpoint of every key,
// sorted by key.
func (r *RSS) Checkpoints() []Ckpt {
	out := make([]Ckpt, 0, len(r.ckpts))
	for _, lineage := range r.ckpts {
		if len(lineage) > 0 {
			out = append(out, lineage[0])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// TotalCheckpointBytes returns the volume of the newest generation of all
// registered checkpoints.
func (r *RSS) TotalCheckpointBytes() float64 {
	sum := 0.0
	for _, c := range r.Checkpoints() {
		sum += c.Bytes
	}
	return sum
}

// DropCheckpoints deletes all registered checkpoints, every generation
// (after a successful restart has consumed them).
func (r *RSS) DropCheckpoints() {
	for k, lineage := range r.ckpts {
		for _, c := range lineage {
			r.deleteBlob(c)
		}
		delete(r.ckpts, k)
	}
	r.epochs = make(map[int]epochRec)
	r.restoreEpoch = 0
}

// PruneExcept deletes every registered checkpoint (all generations) whose
// key is not in keep. Retained for callers that manage a single epoch by
// hand; Commit is the lineage-aware equivalent.
func (r *RSS) PruneExcept(keep []string) {
	keepSet := make(map[string]bool, len(keep))
	for _, k := range keep {
		keepSet[k] = true
	}
	for k, lineage := range r.ckpts {
		if !keepSet[k] {
			for _, c := range lineage {
				r.deleteBlob(c)
			}
			delete(r.ckpts, k)
		}
	}
}

// verifiedCandidates returns the depots of c whose blob verifies against
// the writer checksum, primary first. A blob that is present but fails
// verification is counted (and published) as detected corruption.
func (r *RSS) verifiedCandidates(c Ckpt) []*topology.Node {
	bk := r.blobKey(c.Key, c.Epoch)
	var out []*topology.Node
	for _, cand := range []*topology.Node{c.Depot, c.Replica} {
		if cand == nil {
			continue
		}
		if r.storage.Verify(cand.Name(), bk, c.Sum) {
			out = append(out, cand)
			continue
		}
		if _, present := r.storage.Size(cand.Name(), bk); present {
			r.corruptDetected++
			r.sim.Tracef("srs: %s corrupt on %s, skipping", bk, cand.Name())
			if tel := r.sim.Telemetry(); tel != nil {
				tel.Counter("srs", "ckpt_corrupt_detected").Inc()
				tel.Emit(telemetry.Event{
					Type: telemetry.EvCkptCorrupt, Comp: "srs:" + r.app, Name: c.Key,
					Args: []telemetry.Arg{
						telemetry.S("depot", cand.Name()),
						telemetry.I("epoch", c.Epoch),
					},
				})
			}
		}
	}
	return out
}

// PlanRestore chooses the generation the next restore reads and returns
// its progress marker plus whether any restorable checkpoint state exists.
// It walks the sealed epochs newest first and picks the first whose every
// blob still verifies on some depot (primary or replica); corruption in
// the newest generation therefore falls back to an older one, with the
// resume marker moving back in lockstep so progress and data stay
// consistent. With no sealed epoch (single-round callers that never
// Commit) it degrades to the newest-blob-per-key behavior.
func (r *RSS) PlanRestore() (int, bool) {
	r.restoreEpoch = 0
	if len(r.epochs) == 0 {
		// Legacy path (nothing committed yet): resume from the registered
		// checkpoints — but only if every one of them still has an intact
		// verified copy. Otherwise restart from scratch: retrying a read
		// of rotted bytes forever is the one unrecoverable loop.
		if len(r.ckpts) == 0 {
			return r.resumeMarker, false
		}
		for _, c := range r.Checkpoints() {
			if len(r.verifiedCandidates(c)) == 0 {
				r.sim.Tracef("srs: %s uncommitted checkpoint %s unverifiable, restarting from scratch", r.app, c.Key)
				return 0, false
			}
		}
		return r.resumeMarker, true
	}
	newest := 0
	for e := range r.epochs {
		if e > newest {
			newest = e
		}
	}
	for e := newest; e > 0; e-- {
		rec, ok := r.epochs[e]
		if !ok {
			break // fell out of the keep window: nothing older remains
		}
		viable := true
		for _, key := range rec.keys {
			c, found := r.lookup(key, e)
			if !found || len(r.verifiedCandidates(c)) == 0 {
				viable = false
				break
			}
		}
		if !viable {
			continue
		}
		if e != newest {
			r.lineageFalls++
			if tel := r.sim.Telemetry(); tel != nil {
				tel.Counter("srs", "lineage_fallbacks").Inc()
			}
			r.sim.Tracef("srs: %s restoring from older generation %d (newest %d unverifiable)", r.app, e, newest)
		}
		r.restoreEpoch = e
		r.resumeMarker = rec.marker
		return rec.marker, true
	}
	return 0, false // no generation verifies: recompute from scratch
}

// restoreSet is the checkpoint set one restore reads: the planned epoch's
// committed keys, or the newest generation per key when no epoch is
// sealed.
func (r *RSS) restoreSet() []Ckpt {
	if r.restoreEpoch == 0 {
		return r.Checkpoints()
	}
	rec := r.epochs[r.restoreEpoch]
	out := make([]Ckpt, 0, len(rec.keys))
	for _, key := range rec.keys {
		if c, ok := r.lookup(key, r.restoreEpoch); ok {
			out = append(out, c)
		}
	}
	return out
}

// Lib is the per-process SRS handle the application calls.
type Lib struct {
	rss *RSS
	ctx *mpi.Ctx

	writeTime float64
	readTime  float64
}

// Attach binds the calling application process to the RSS daemon,
// performing SRS initialization.
func Attach(rss *RSS, ctx *mpi.Ctx) *Lib { return &Lib{rss: rss, ctx: ctx} }

// NeedStop reports whether the process should checkpoint and terminate
// (the srs_check call of the paper).
func (l *Lib) NeedStop() bool { return l.rss.StopRequested() }

// CheckpointWriteTime returns the virtual time this process has spent
// writing checkpoints.
func (l *Lib) CheckpointWriteTime() float64 { return l.writeTime }

// CheckpointReadTime returns the virtual time spent reading checkpoints.
func (l *Lib) CheckpointReadTime() float64 { return l.readTime }

// StoreCheckpoint writes bytes of user data under key to the IBP depot on
// the process's own node ("checkpoints are written to IBP storage on local
// disks"), copies it to a buddy depot when replication is on, and registers
// it with the RSS. The blob is checksummed and tagged with the current
// write epoch. A failed replica write degrades to an unreplicated
// checkpoint rather than failing the application.
func (l *Lib) StoreCheckpoint(key string, bytes float64) error {
	node := l.ctx.Node()
	p := l.ctx.Proc()
	start := l.ctx.Now()
	epoch := l.rss.writeEpoch
	sum := l.rss.checksum(key, epoch, bytes)
	err := l.rss.retrier.Do(p, "ibp.store", func() error {
		return l.rss.storage.StoreSum(p, node, node, l.rss.blobKey(key, epoch), bytes, sum)
	})
	l.writeTime += l.ctx.Now() - start
	if err != nil {
		return err
	}
	ck := Ckpt{Key: key, Epoch: epoch, Sum: sum, Depot: node, Bytes: bytes}
	l.rss.register(ck)
	if l.rss.replicate {
		// Copy to a buddy depot asynchronously (an IBP data mover), off
		// the application's critical path: checkpoint writes stay
		// local-disk cheap (Figure 3), while the replica is what restores
		// fall back to when the writer's node later crashes. Until the
		// copy lands there is a window with no replica — exactly the
		// vulnerability window a real lazy replication scheme has.
		l.rss.replicateAsync(ck)
	}
	if tel := l.rss.sim.Telemetry(); tel != nil {
		tel.Counter("srs", "ckpt_writes").Inc()
		tel.Histogram("srs", "ckpt_write_seconds").Observe(l.ctx.Now() - start)
		tel.Emit(telemetry.Event{
			Type: telemetry.EvCkptWrite, Comp: "srs:" + l.rss.app, Name: key,
			Dur:  l.ctx.Now() - start,
			Args: []telemetry.Arg{telemetry.F("bytes", bytes), telemetry.S("depot", node.Name())},
		})
	}
	return nil
}

// AckStopped tells the RSS this process has finished its final checkpoint
// and is terminating.
func (l *Lib) AckStopped() { l.rss.ackStopped() }

// RestoreShare reads this process's share of the previous execution's
// checkpoint data onto its current node: 1/nProcs of every blob in the
// planned restore set, pulled from a depot whose copy verifies. This
// models the block-cyclic N-to-M redistribution (every new process touches
// every old depot, and data written at the old site crosses the network to
// the new one). All of one rank's reads share a single virtual-time
// deadline when a restore budget is set. It returns the bytes read.
func (l *Lib) RestoreShare(myRank, nProcs int) (float64, error) {
	if nProcs <= 0 {
		return 0, fmt.Errorf("srs: bad process count %d", nProcs)
	}
	start := l.ctx.Now()
	defer func() { l.readTime += l.ctx.Now() - start }()
	p := l.ctx.Proc()
	dl := resilience.DeadlineAfter(start, l.rss.restoreBudget)
	total := 0.0
	for _, c := range l.rss.restoreSet() {
		c := c
		bk := l.rss.blobKey(c.Key, c.Epoch)
		share := c.Bytes / float64(nProcs)
		var n float64
		err := l.rss.retrier.DoUntil(p, "ibp.retrieve", dl, func() error {
			cands := l.rss.verifiedCandidates(c)
			if len(cands) == 0 {
				// Both copies rotted since planning: not retryable, the
				// caller must re-plan against an older generation.
				return fmt.Errorf("%w: no intact copy of %s", ibp.ErrCorrupt, bk)
			}
			var rerr error
			for i, cand := range cands {
				// Prefer the first live verified depot; the last candidate
				// is tried even when down so the retry layer sees the
				// transient error and backs off.
				if cand.Down() && i < len(cands)-1 {
					continue
				}
				n, rerr = l.rss.storage.RetrievePartial(p, cand, l.ctx.Node(), bk, share)
				if rerr == nil {
					// Belt and braces: re-verify after the read. Corruption
					// that landed while the bytes were in flight must not
					// be consumed silently.
					if !l.rss.storage.Verify(cand.Name(), bk, c.Sum) {
						l.rss.corruptServed++
						return fmt.Errorf("%w: %s rotted mid-read on %s", ibp.ErrCorrupt, bk, cand.Name())
					}
					return nil
				}
				if errors.Is(rerr, ibp.ErrCorrupt) {
					continue // try the other verified copy
				}
				if !faultinject.Retryable(rerr) {
					return rerr
				}
			}
			return rerr
		})
		if err != nil {
			return total, err
		}
		total += n
	}
	if tel := l.rss.sim.Telemetry(); tel != nil {
		tel.Counter("srs", "ckpt_reads").Inc()
		tel.Histogram("srs", "ckpt_read_seconds").Observe(l.ctx.Now() - start)
		tel.Emit(telemetry.Event{
			Type: telemetry.EvCkptRead, Comp: "srs:" + l.rss.app,
			Dur:  l.ctx.Now() - start,
			Args: []telemetry.Arg{telemetry.F("bytes", total), telemetry.I("rank", myRank), telemetry.I("nprocs", nProcs)},
		})
	}
	return total, nil
}
