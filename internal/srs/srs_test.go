package srs

import (
	"math"
	"testing"

	"grads/internal/ibp"
	"grads/internal/mpi"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// rig builds a 2-site grid (4 nodes at A, 4 at B), IBP depots everywhere,
// and an RSS.
type rig struct {
	sim  *simcore.Sim
	grid *topology.Grid
	st   *ibp.System
	rss  *RSS
}

func newRig() *rig {
	sim := simcore.New(1)
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e8, 1e-4)
	g.AddSite("B", 1e8, 1e-4)
	g.Connect("A", "B", 1.25e6, 0.011)
	for i := 0; i < 4; i++ {
		g.AddNode(topology.NodeSpec{Name: "a" + string(rune('1'+i)), Site: "A", MHz: 933, FlopsPerCycle: 0.5})
		g.AddNode(topology.NodeSpec{Name: "b" + string(rune('1'+i)), Site: "B", MHz: 450, FlopsPerCycle: 0.4})
	}
	st := ibp.New(sim, g)
	st.AddDepotsEverywhere()
	return &rig{sim: sim, grid: g, st: st, rss: NewRSS(sim, st, "qr")}
}

func siteNodes(g *topology.Grid, site string) []*topology.Node {
	return g.Site(site).Nodes()
}

func TestCheckpointStopRestartCycle(t *testing.T) {
	r := newRig()
	nodesA := siteNodes(r.grid, "A")
	w1 := mpi.NewWorld(r.sim, r.grid, "run1", nodesA)
	perRank := 1e7

	// Run 1: each rank works until stop is requested, then checkpoints.
	w1.Start(func(ctx *mpi.Ctx) {
		lib := Attach(r.rss, ctx)
		for i := 0; ; i++ {
			if lib.NeedStop() {
				key := "A.rank" + string(rune('0'+ctx.PhysRank()))
				if err := lib.StoreCheckpoint(key, perRank); err != nil {
					t.Errorf("StoreCheckpoint: %v", err)
				}
				r.rss.SetResumeMarker(i)
				lib.AckStopped()
				return
			}
			if err := ctx.Compute(1e8); err != nil {
				return
			}
		}
	})
	r.sim.Schedule(5, func() { r.rss.RequestStop(4) })

	var restartBytes float64
	var marker int
	r.sim.Spawn("manager", func(p *simcore.Proc) {
		if err := r.rss.WaitAllStopped(p); err != nil {
			t.Errorf("WaitAllStopped: %v", err)
			return
		}
		marker = r.rss.ResumeMarker()
		r.rss.ClearStop()
		// Run 2 on the other site with twice the processes (N -> M).
		nodesB := siteNodes(r.grid, "B")
		w2 := mpi.NewWorld(r.sim, r.grid, "run2", nodesB)
		w2.Start(func(ctx *mpi.Ctx) {
			lib := Attach(r.rss, ctx)
			n, err := lib.RestoreShare(ctx.PhysRank(), 4)
			if err != nil {
				t.Errorf("RestoreShare: %v", err)
			}
			restartBytes += n
		})
		w2.Wait(p)
	})
	r.sim.Run()

	if marker <= 0 {
		t.Fatalf("resume marker = %d, want progress before stop", marker)
	}
	if r.rss.TotalCheckpointBytes() != 4*perRank {
		t.Fatalf("registered checkpoint bytes = %v, want %v", r.rss.TotalCheckpointBytes(), 4*perRank)
	}
	// Every new rank read 1/4 of each of the 4 blobs: total re-read = all.
	if math.Abs(restartBytes-4*perRank) > 1 {
		t.Fatalf("restored %v bytes, want %v", restartBytes, 4*perRank)
	}
	if r.rss.Migrations() != 1 {
		t.Fatalf("migrations = %d", r.rss.Migrations())
	}
}

func TestCheckpointWriteLocalCheapReadRemoteExpensive(t *testing.T) {
	r := newRig()
	a1 := r.grid.Node("a1")
	b1 := r.grid.Node("b1")
	wA := mpi.NewWorld(r.sim, r.grid, "w", []*topology.Node{a1, b1})
	bytes := 8e7 // 80 MB

	var writeT, readT float64
	wA.Start(func(ctx *mpi.Ctx) {
		lib := Attach(r.rss, ctx)
		switch ctx.PhysRank() {
		case 0:
			if err := lib.StoreCheckpoint("blob", bytes); err != nil {
				t.Errorf("store: %v", err)
			}
			writeT = lib.CheckpointWriteTime()
		case 1:
			// Wait for the writer, then pull the whole blob across the WAN.
			ctx.Proc().Sleep(10)
			if _, err := lib.RestoreShare(0, 1); err != nil {
				t.Errorf("restore: %v", err)
			}
			readT = lib.CheckpointReadTime()
		}
	})
	r.sim.Run()
	// Write: 80 MB to local disk at 40 MB/s = 2 s.
	if math.Abs(writeT-2) > 0.01 {
		t.Fatalf("write time = %v, want 2", writeT)
	}
	// Read: 2 s disk + 80 MB over 1.25 MB/s WAN = ~66 s.
	if readT < 30 {
		t.Fatalf("read time = %v, want WAN-dominated (>30s)", readT)
	}
}

func TestDropCheckpoints(t *testing.T) {
	r := newRig()
	a1 := r.grid.Node("a1")
	w := mpi.NewWorld(r.sim, r.grid, "w", []*topology.Node{a1})
	w.Start(func(ctx *mpi.Ctx) {
		lib := Attach(r.rss, ctx)
		lib.StoreCheckpoint("x", 1000)
	})
	r.sim.Run()
	if len(r.rss.Checkpoints()) != 1 {
		t.Fatal("checkpoint not registered")
	}
	r.rss.DropCheckpoints()
	if len(r.rss.Checkpoints()) != 0 {
		t.Fatal("DropCheckpoints left registry entries")
	}
	if _, ok := r.st.Size("a1", r.rss.blobKey("x", 1)); ok {
		t.Fatal("DropCheckpoints left depot data")
	}
}

func TestRestoreShareBadProcs(t *testing.T) {
	r := newRig()
	a1 := r.grid.Node("a1")
	w := mpi.NewWorld(r.sim, r.grid, "w", []*topology.Node{a1})
	w.Start(func(ctx *mpi.Ctx) {
		lib := Attach(r.rss, ctx)
		if _, err := lib.RestoreShare(0, 0); err == nil {
			t.Error("RestoreShare accepted 0 procs")
		}
	})
	r.sim.Run()
}

func TestStopOnlyAfterRequest(t *testing.T) {
	r := newRig()
	a1 := r.grid.Node("a1")
	w := mpi.NewWorld(r.sim, r.grid, "w", []*topology.Node{a1})
	checks := 0
	w.Start(func(ctx *mpi.Ctx) {
		lib := Attach(r.rss, ctx)
		for i := 0; i < 5; i++ {
			if lib.NeedStop() {
				t.Error("NeedStop true without a request")
			}
			checks++
			ctx.Compute(1e6)
		}
	})
	r.sim.Run()
	if checks != 5 {
		t.Fatalf("app did not run to completion: %d checks", checks)
	}
}
