package apps

import (
	"fmt"
	"math/rand"

	"grads/internal/core"
	"grads/internal/perfmodel"
	"grads/internal/topology"
)

// emanStage describes one component of the EMAN refinement chain
// (Figure 2): a linear workflow in which some components parallelize.
type emanStage struct {
	name     string
	flops    func(n float64) float64 // analytic resource-usage curve
	outBytes float64
	parallel bool
	minMemMB float64
	reqArch  topology.Arch // non-empty: binary only validated on this arch
}

// emanStages is the EMAN single-particle refinement chain: preprocess the
// preliminary model, generate projections, classify raw particles against
// the projections (the dominant, embarrassingly parallel step), align the
// particles within classes, reconstruct the 3-D model, and run the
// even/odd resolution test.
func emanStages() []emanStage {
	return []emanStage{
		{name: "proc3d", flops: func(n float64) float64 { return 2e6 * n }, outBytes: 50e6},
		{name: "project3d", flops: func(n float64) float64 { return 1e7 * n }, outBytes: 200e6},
		{name: "classesbymra", flops: func(n float64) float64 { return 5e6 * n * n }, outBytes: 400e6, parallel: true, minMemMB: 512},
		// classalign2 is only deployed for IA-32 (per-architecture library
		// availability is exactly what the distributed binder's GIS
		// lookups model), so a valid schedule must span both
		// architectures — the heterogeneity §3.3 demonstrated.
		{name: "classalign2", flops: func(n float64) float64 { return 4e5 * n * n }, outBytes: 300e6, parallel: true, reqArch: topology.ArchIA32},
		{name: "make3d", flops: func(n float64) float64 { return 2e7 * n }, outBytes: 100e6, minMemMB: 512},
		{name: "eotest", flops: func(n float64) float64 { return 5e6 * n }, outBytes: 10e6},
	}
}

// EMANWorkflow builds the §3.3 EMAN refinement workflow for a dataset of n
// particle images, with the parallelizable components split width ways.
// Component models are fitted from small-size profiles exactly as the
// GrADS performance modeling pipeline does (§3.2).
func EMANWorkflow(n float64, width int) (*core.Workflow, error) {
	if n <= 0 || width <= 0 {
		return nil, fmt.Errorf("apps: bad EMAN parameters n=%v width=%d", n, width)
	}
	w := core.NewWorkflow()
	prev := -1
	for _, st := range emanStages() {
		var samples []perfmodel.Sample
		for s := 50.0; s <= 250; s += 50 {
			samples = append(samples, perfmodel.Sample{N: s, Flops: st.flops(s)})
		}
		model, err := perfmodel.FitComponent(st.name, samples, 2, 0)
		if err != nil {
			return nil, fmt.Errorf("apps: fitting %s: %w", st.name, err)
		}
		c := &core.Component{
			Name:           st.name,
			Model:          model,
			ProblemSize:    n,
			OutputBytes:    st.outBytes,
			Parallelizable: st.parallel,
			Width:          width,
			MinMemMB:       st.minMemMB,
			ReqArch:        st.reqArch,
		}
		if prev < 0 {
			prev = w.Add(c)
		} else {
			prev = w.Add(c, prev)
		}
	}
	return w, nil
}

// RandomWorkflow generates a layered random DAG for scheduler benchmarks:
// layers of width tasks, each task depending on 1..fanin random tasks of
// the previous layer, with mixed computational weights.
func RandomWorkflow(rng *rand.Rand, layers, width, fanin int) (*core.Workflow, error) {
	if layers <= 0 || width <= 0 {
		return nil, fmt.Errorf("apps: bad random workflow shape")
	}
	if fanin < 1 {
		fanin = 1
	}
	w := core.NewWorkflow()
	var prevLayer []int
	for l := 0; l < layers; l++ {
		var cur []int
		for i := 0; i < width; i++ {
			scale := 1e8 * float64(1+rng.Intn(10))
			samples := []perfmodel.Sample{
				{N: 1, Flops: scale}, {N: 2, Flops: 2 * scale}, {N: 3, Flops: 3 * scale},
			}
			model, err := perfmodel.FitComponent(fmt.Sprintf("t%d.%d", l, i), samples, 1, 0)
			if err != nil {
				return nil, err
			}
			var deps []int
			if len(prevLayer) > 0 {
				k := 1 + rng.Intn(fanin)
				seen := map[int]bool{}
				for j := 0; j < k; j++ {
					d := prevLayer[rng.Intn(len(prevLayer))]
					if !seen[d] {
						seen[d] = true
						deps = append(deps, d)
					}
				}
			}
			cur = append(cur, w.Add(&core.Component{
				Name:        fmt.Sprintf("t%d.%d", l, i),
				Model:       model,
				ProblemSize: float64(1 + rng.Intn(3)),
				OutputBytes: 1e6 * float64(1+rng.Intn(50)),
			}, deps...))
		}
		prevLayer = cur
	}
	return w, nil
}
