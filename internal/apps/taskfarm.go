package apps

import (
	"fmt"
	"math"

	"grads/internal/binder"
	"grads/internal/cop"
	"grads/internal/mpi"
	"grads/internal/nws"
	"grads/internal/simcore"
	"grads/internal/srs"
	"grads/internal/topology"
)

// TaskFarm is a parameter-sweep application encapsulated as a COP: Tasks
// independent work units of TaskFlops each, farmed over a (possibly
// cross-site) node set one task per worker per round, with SRS
// checkpointing of the completed-task marker and result accumulator. It is
// the loosely coupled counterpart to the QR COP in the metascheduler's job
// mix: it tolerates any lease width down to one node, which makes it the
// natural preemption victim.
type TaskFarm struct {
	Tasks     int     // total independent work units
	TaskFlops float64 // operations per unit

	// StateBytes is the checkpointed footprint (result accumulator); it is
	// what a stop-and-restart must move.
	StateBytes float64

	// Width is the maximum number of worker nodes the mapper requests.
	Width int

	// CheckpointEvery, when positive, commits a periodic checkpoint every
	// that many completed rounds so node failures lose bounded work.
	CheckpointEvery int

	grid    *topology.Grid
	rss     *srs.RSS
	bind    *binder.Binder
	weather *nws.Service

	doneTasks int
	curNodes  []*topology.Node
	world     *mpi.World
	stopped   bool

	// Contract sensors (written by virtual rank 0).
	lastRoundActual    float64
	lastRoundPredicted float64
}

// NewTaskFarm returns the COP. StateBytes defaults to 8 bytes per task
// (one accumulated double each) when non-positive.
func NewTaskFarm(grid *topology.Grid, rss *srs.RSS, b *binder.Binder, w *nws.Service, tasks int, taskFlops float64, width int) (*TaskFarm, error) {
	if tasks <= 0 || taskFlops <= 0 || width <= 0 {
		return nil, fmt.Errorf("apps: bad task farm shape tasks=%d flops=%g width=%d", tasks, taskFlops, width)
	}
	return &TaskFarm{
		Tasks: tasks, TaskFlops: taskFlops, StateBytes: 8 * float64(tasks),
		Width: width,
		grid:  grid, rss: rss, bind: b, weather: w,
	}, nil
}

// Name implements cop.COP.
func (f *TaskFarm) Name() string { return "task-farm" }

// Pkg implements cop.COP.
func (f *TaskFarm) Pkg() binder.Package {
	return binder.Package{
		Name:      "task-farm",
		IRBytes:   120e3,
		Libraries: []string{"srs", "autopilot", "mpi"},
		IsMPI:     true,
	}
}

// Mapper implements cop.COP: tasks are independent, so the farm takes the
// fastest nodes anywhere, across sites.
func (f *TaskFarm) Mapper() cop.Mapper { return cop.GreedyMapper{Width: f.Width, SameSite: false} }

// Model implements cop.COP.
func (f *TaskFarm) Model() cop.PerformanceModel { return f }

// DoneTasks returns the progress marker.
func (f *TaskFarm) DoneTasks() int { return f.doneTasks }

// CurNodes returns the nodes of the current (or last) execution segment.
func (f *TaskFarm) CurNodes() []*topology.Node { return f.curNodes }

// farmRate is the aggregate forecast rate of a node set: tasks are
// independent, so rates add (no lock-step penalty).
func farmRate(nodes []*topology.Node, avail func(*topology.Node) float64) float64 {
	sum := 0.0
	for _, n := range nodes {
		a := 1.0
		if avail != nil {
			a = avail(n)
		}
		sum += n.Spec.Flops() * a
	}
	return sum
}

// RemainingTime implements cop.PerformanceModel.
func (f *TaskFarm) RemainingTime(nodes []*topology.Node, avail func(*topology.Node) float64) float64 {
	rate := farmRate(nodes, avail)
	if rate <= 0 {
		return math.Inf(1)
	}
	return float64(f.Tasks-f.doneTasks) * f.TaskFlops / rate
}

// ProgressVersion implements rescheduler.ProgressVersioned: the completed
// task count is the only mutable state RemainingTime reads.
func (f *TaskFarm) ProgressVersion() int64 { return int64(f.doneTasks) }

// CheckpointBytes implements cop.PerformanceModel.
func (f *TaskFarm) CheckpointBytes() float64 { return f.StateBytes }

// RestartOverhead implements cop.PerformanceModel: selection, modeling,
// bind and launch on a fresh node set.
func (f *TaskFarm) RestartOverhead() float64 {
	nodes := f.curNodes
	if len(nodes) == 0 {
		nodes = f.grid.Nodes()
		if len(nodes) > f.Width {
			nodes = nodes[:f.Width]
		}
	}
	return 2 + 10 + f.bind.EstimateOverhead(f.Pkg(), nodes) + 3
}

// Rollback implements cop.Recoverable: progress reverts to the newest
// checkpoint generation that still verifies.
func (f *TaskFarm) Rollback() bool {
	marker, ok := f.rss.PlanRestore()
	f.doneTasks = marker
	f.lastRoundActual, f.lastRoundPredicted = 0, 0
	return ok
}

// PredictedRoundSensor and ActualRoundSensor expose the farm's contract
// signals: promised versus measured duration of the most recent round.
func (f *TaskFarm) PredictedRoundSensor() func() (float64, bool) {
	return func() (float64, bool) { return f.lastRoundPredicted, f.lastRoundPredicted > 0 }
}

// ActualRoundSensor returns the measured-duration sensor.
func (f *TaskFarm) ActualRoundSensor() func() (float64, bool) {
	return func() (float64, bool) { return f.lastRoundActual, f.lastRoundActual > 0 }
}

// farmCkptKey is the stable checkpoint key of one worker in a P-worker
// layout.
func farmCkptKey(me, nProcs int) string { return fmt.Sprintf("farm.r%dof%d", me, nProcs) }

// commitCheckpoints seals the checkpoint round just written under the
// current layout's key set.
func (f *TaskFarm) commitCheckpoints(nProcs, marker int) {
	keys := make([]string, nProcs)
	for i := range keys {
		keys[i] = farmCkptKey(i, nProcs)
	}
	f.rss.Commit(marker, keys)
}

// Run implements cop.COP: one execution segment on nodes. Each round farms
// one task per worker; rank 0 checks the SRS stop flag and broadcasts the
// verdict so every worker stops after the same round (the farm's only
// synchronization).
func (f *TaskFarm) Run(p *simcore.Proc, nodes []*topology.Node, restart bool) (cop.RunReport, error) {
	sim := f.grid.Sim
	f.curNodes = nodes
	f.stopped = false
	f.lastRoundActual, f.lastRoundPredicted = 0, 0
	startTask := f.doneTasks
	nProcs := len(nodes)
	world := mpi.NewWorld(sim, f.grid, "farm", nodes)
	f.world = world
	comm := world.WorldComm()

	nominalRate := farmRate(nodes, nil)

	libs := make([]*srs.Lib, nProcs)
	segStart := p.Now()
	world.Start(func(ctx *mpi.Ctx) {
		me := ctx.PhysRank()
		lib := srs.Attach(f.rss, ctx)
		libs[me] = lib
		if restart {
			if _, err := lib.RestoreShare(me, nProcs); err != nil {
				world.Fail(err)
				return
			}
		}
		round := 0
		for next := startTask; next < f.Tasks; next += nProcs {
			roundStart := ctx.Now()
			active := f.Tasks - next
			if active > nProcs {
				active = nProcs
			}
			// Worker me computes its task of the round, if it drew one.
			if me < active {
				if err := ctx.Compute(f.TaskFlops); err != nil {
					world.Fail(err)
					return
				}
			}
			round++
			ctx.MarkIteration(round)
			if me == 0 {
				f.doneTasks = next + active
				if round > 1 {
					f.lastRoundActual = ctx.Now() - roundStart
					f.lastRoundPredicted = float64(active) * f.TaskFlops / nominalRate
				}
			}
			// Collective stop check, as in the QR COP: rank 0 reads the
			// flag and broadcasts the verdict.
			stop := 0
			if me == 0 && lib.NeedStop() {
				stop = 1
			}
			verdict, err := comm.Bcast(ctx, 0, 64, stop)
			if err != nil {
				world.Fail(err)
				return
			}
			if verdict.(int) == 1 {
				if err := lib.StoreCheckpoint(farmCkptKey(me, nProcs), f.StateBytes/float64(nProcs)); err != nil {
					world.Fail(err)
					return
				}
				if me == 0 {
					f.commitCheckpoints(nProcs, f.doneTasks)
					f.stopped = true
				}
				lib.AckStopped()
				return
			}
			// Periodic fault-tolerance checkpoint.
			if f.CheckpointEvery > 0 && round%f.CheckpointEvery == 0 && next+active < f.Tasks {
				if err := lib.StoreCheckpoint(farmCkptKey(me, nProcs), f.StateBytes/float64(nProcs)); err != nil {
					world.Fail(err)
					return
				}
				if err := comm.Barrier(ctx); err != nil {
					world.Fail(err)
					return
				}
				if me == 0 {
					f.commitCheckpoints(nProcs, next+active)
				}
			}
		}
	})
	if err := world.Wait(p); err != nil {
		return cop.RunReport{}, err
	}
	f.lastRoundActual, f.lastRoundPredicted = 0, 0
	if err := world.Err(); err != nil {
		return cop.RunReport{}, err
	}
	elapsed := p.Now() - segStart
	var maxWrite, maxRead float64
	for _, lib := range libs {
		if lib == nil {
			continue
		}
		if w := lib.CheckpointWriteTime(); w > maxWrite {
			maxWrite = w
		}
		if r := lib.CheckpointReadTime(); r > maxRead {
			maxRead = r
		}
	}
	return cop.RunReport{
		Stopped:   f.stopped,
		Duration:  elapsed - maxWrite - maxRead,
		CkptWrite: maxWrite,
		CkptRead:  maxRead,
	}, nil
}
