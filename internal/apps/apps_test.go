package apps

import (
	"math"
	"math/rand"
	"testing"

	"grads/internal/binder"
	"grads/internal/core"
	"grads/internal/gis"
	"grads/internal/ibp"
	"grads/internal/simcore"
	"grads/internal/srs"
	"grads/internal/topology"
)

// qrRig wires the QR testbed with storage, GIS, binder and RSS.
type qrRig struct {
	sim  *simcore.Sim
	grid *topology.Grid
	rss  *srs.RSS
	qr   *QR
}

func newQRRig(t testing.TB, n, nb int) *qrRig {
	t.Helper()
	sim := simcore.New(1)
	grid := topology.QRTestbed(sim)
	st := ibp.New(sim, grid)
	st.AddDepotsEverywhere()
	g := gis.New(sim, grid)
	g.RegisterSoftwareEverywhere(binder.LocalBinderPkg, "/opt/grads/binder")
	for _, lib := range []string{"scalapack", "blas", "srs", "autopilot"} {
		g.RegisterSoftwareEverywhere(lib, "/opt/"+lib)
	}
	b := binder.New(sim, g)
	rss := srs.NewRSS(sim, st, "qr")
	qr, err := NewQR(grid, rss, b, nil, n, nb)
	if err != nil {
		t.Fatalf("NewQR: %v", err)
	}
	return &qrRig{sim: sim, grid: grid, rss: rss, qr: qr}
}

func TestQRModelMatchesAnalyticFlops(t *testing.T) {
	r := newQRRig(t, 4000, 100)
	total := 0.0
	for k := 0; k < r.qr.Panels(); k++ {
		total += r.qr.panelFlops(k)
	}
	want := 4.0 / 3.0 * 4000 * 4000 * 4000
	if math.Abs(total-want)/want > 1e-9 {
		t.Fatalf("panel flops sum %v, want %v", total, want)
	}
	if r.qr.CheckpointBytes() != (4000*4000+4000)*8 {
		t.Fatalf("checkpoint bytes = %v", r.qr.CheckpointBytes())
	}
}

func TestQRMapperPrefersUnloadedUTK(t *testing.T) {
	r := newQRRig(t, 4000, 100)
	nodes := r.qr.Mapper().Map(r.grid.Nodes(), func(n *topology.Node) float64 {
		return n.CPU.Availability()
	})
	if len(nodes) != 4 {
		t.Fatalf("mapper chose %d nodes, want the 4 UTK nodes", len(nodes))
	}
	for _, n := range nodes {
		if n.Site().Name != "UTK" {
			t.Fatalf("mapper chose %s, want UTK only", n.Name())
		}
	}
	// With UTK loaded, the mapper flips to UIUC.
	for _, n := range r.grid.Site("UTK").Nodes() {
		n.CPU.SetExternalLoad(2)
	}
	nodes = r.qr.Mapper().Map(r.grid.Nodes(), func(n *topology.Node) float64 {
		return n.CPU.Availability()
	})
	if len(nodes) != 8 || nodes[0].Site().Name != "UIUC" {
		t.Fatalf("loaded mapper chose %d nodes at %s, want 8 UIUC", len(nodes), nodes[0].Site().Name)
	}
}

func TestQRRunToCompletion(t *testing.T) {
	r := newQRRig(t, 1000, 100)
	utk := r.grid.Site("UTK").Nodes()
	var rep struct {
		dur     float64
		stopped bool
	}
	r.sim.Spawn("mgr", func(p *simcore.Proc) {
		rr, err := r.qr.Run(p, utk, false)
		if err != nil {
			t.Errorf("Run: %v", err)
			return
		}
		rep.dur, rep.stopped = rr.Duration, rr.Stopped
	})
	r.sim.Run()
	if rep.stopped {
		t.Fatal("unforced run reported stopped")
	}
	// Sanity: duration within 3x of the pure compute lower bound
	// (4 UTK nodes at 933 MHz x 0.15 sustained flops/cycle).
	lower := 4.0 / 3.0 * 1e9 / (4 * 933e6 * 0.15)
	if rep.dur < lower*0.9 || rep.dur > lower*3 {
		t.Fatalf("duration %v implausible vs compute bound %v", rep.dur, lower)
	}
	if r.qr.DonePanels() != r.qr.Panels() {
		t.Fatalf("done %d of %d panels", r.qr.DonePanels(), r.qr.Panels())
	}
}

func TestQRStopCheckpointRestartPreservesProgress(t *testing.T) {
	r := newQRRig(t, 2000, 100)
	utk := r.grid.Site("UTK").Nodes()
	uiuc := r.grid.Site("UIUC").Nodes()
	var totalPanels int
	r.sim.Spawn("mgr", func(p *simcore.Proc) {
		// Ask for a stop mid-run.
		r.sim.Schedule(2, func() { r.rss.RequestStop(len(utk)) })
		rr, err := r.qr.Run(p, utk, false)
		if err != nil {
			t.Errorf("segment 1: %v", err)
			return
		}
		if !rr.Stopped {
			t.Error("segment 1 did not stop on request")
			return
		}
		if rr.CkptWrite <= 0 {
			t.Error("no checkpoint write time recorded")
		}
		mid := r.qr.DonePanels()
		if mid <= 0 || mid >= r.qr.Panels() {
			t.Errorf("stop at panel %d of %d", mid, r.qr.Panels())
		}
		r.rss.ClearStop()
		rr2, err := r.qr.Run(p, uiuc, true)
		if err != nil {
			t.Errorf("segment 2: %v", err)
			return
		}
		if rr2.Stopped {
			t.Error("segment 2 stopped unexpectedly")
		}
		if rr2.CkptRead <= 0 {
			t.Error("restart did not read checkpoints")
		}
		totalPanels = r.qr.DonePanels()
	})
	r.sim.Run()
	if totalPanels != r.qr.Panels() {
		t.Fatalf("restart finished %d of %d panels", totalPanels, r.qr.Panels())
	}
}

func TestQRContractSensorsReactToLoad(t *testing.T) {
	r := newQRRig(t, 3000, 100)
	utk := r.grid.Site("UTK").Nodes()
	r.sim.Spawn("mgr", func(p *simcore.Proc) { r.qr.Run(p, utk, false) })
	var healthyRatio, loadedRatio float64
	sample := func(out *float64) func() {
		return func() {
			a, okA := r.qr.ActualPanelSensor()()
			pr, okP := r.qr.PredictedPanelSensor()()
			if okA && okP && pr > 0 {
				*out = a / pr
			}
		}
	}
	// Panels take ~6.5s each on the calibrated testbed, and the warm-up
	// panel is skipped by the sensors: sample after the second completes,
	// load the node, then sample a loaded panel.
	r.sim.Schedule(15, sample(&healthyRatio))
	r.sim.Schedule(16, func() { r.grid.Node("utk1").CPU.SetExternalLoad(2) })
	r.sim.Schedule(60, sample(&loadedRatio))
	r.sim.Run()
	if healthyRatio <= 0 || math.Abs(healthyRatio-1) > 0.5 {
		t.Fatalf("healthy ratio = %v, want ~1", healthyRatio)
	}
	if loadedRatio < 2 {
		t.Fatalf("loaded ratio = %v, want ~3 (one node at 1/3 speed paces all)", loadedRatio)
	}
}

func TestQRBadParams(t *testing.T) {
	r := newQRRig(t, 100, 10)
	if _, err := NewQR(r.grid, r.rss, nil, nil, 0, 10); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewQR(r.grid, r.rss, nil, nil, 100, 200); err == nil {
		t.Fatal("nb>n accepted")
	}
}

func TestNBodyCosts(t *testing.T) {
	nb := NewNBody(4000, 100)
	if nb.IterFlops() != 20*4000*4000 {
		t.Fatalf("IterFlops = %v", nb.IterFlops())
	}
	if nb.PositionBytes(4) != 4000*24/4 {
		t.Fatalf("PositionBytes = %v", nb.PositionBytes(4))
	}
	if nb.StateBytes(4) != 4000*56/4 {
		t.Fatalf("StateBytes = %v", nb.StateBytes(4))
	}
}

func TestEMANWorkflowShape(t *testing.T) {
	w, err := EMANWorkflow(3000, 8)
	if err != nil {
		t.Fatalf("EMANWorkflow: %v", err)
	}
	if w.Len() != 6 {
		t.Fatalf("EMAN has %d components, want 6", w.Len())
	}
	names := []string{"proc3d", "project3d", "classesbymra", "classalign2", "make3d", "eotest"}
	for i, c := range w.Components {
		if c.Name != names[i] {
			t.Fatalf("component %d = %s, want %s", i, c.Name, names[i])
		}
		if i > 0 {
			deps := w.Deps(i)
			if len(deps) != 1 || deps[0] != i-1 {
				t.Fatalf("EMAN chain broken at %s: deps %v", c.Name, deps)
			}
		}
	}
	// classesbymra dominates (the refinement hot spot).
	mra := w.Components[2].Model.FlopsAt(3000)
	for i, c := range w.Components {
		if i != 2 && c.Model.FlopsAt(3000) >= mra {
			t.Fatalf("%s flops >= classesbymra", c.Name)
		}
	}
	// Expansion splits the two parallel stages.
	ex := w.Expand()
	if ex.Len() != 4+2*8 {
		t.Fatalf("expanded EMAN has %d components, want 20", ex.Len())
	}
	if _, err := EMANWorkflow(0, 4); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestRandomWorkflowShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w, err := RandomWorkflow(rng, 4, 5, 3)
	if err != nil {
		t.Fatalf("RandomWorkflow: %v", err)
	}
	if w.Len() != 20 {
		t.Fatalf("len = %d, want 20", w.Len())
	}
	levels := w.Levels()
	if len(levels) != 4 {
		t.Fatalf("levels = %d, want 4", len(levels))
	}
	// Determinism for a fixed seed.
	w2, _ := RandomWorkflow(rand.New(rand.NewSource(5)), 4, 5, 3)
	for i := range w.Components {
		if w.Components[i].OutputBytes != w2.Components[i].OutputBytes {
			t.Fatal("RandomWorkflow not deterministic for fixed seed")
		}
	}
	if _, err := RandomWorkflow(rng, 0, 5, 1); err == nil {
		t.Fatal("bad shape accepted")
	}
	// Schedulable on a grid.
	g := topology.MacroGrid(simcore.New(1))
	s := core.NewScheduler(g, nil)
	sched, err := s.Schedule(w, g.Nodes())
	if err != nil || sched.Makespan <= 0 {
		t.Fatalf("random workflow unschedulable: %v", err)
	}
}
