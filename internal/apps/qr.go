// Package apps provides the GrADS applications the paper's experiments run:
// the ScaLAPACK QR factorization COP used by the §4.1 stop/restart
// experiments, the N-body simulation used by the §4.2 process-swapping
// experiments, the EMAN bio-imaging refinement workflow of §3.3, and
// synthetic workflow generators for scheduler benchmarks.
package apps

import (
	"fmt"
	"math"

	"grads/internal/binder"
	"grads/internal/cop"
	"grads/internal/linalg"
	"grads/internal/mpi"
	"grads/internal/nws"
	"grads/internal/perfmodel"
	"grads/internal/simcore"
	"grads/internal/srs"
	"grads/internal/topology"
)

// QR is the ScaLAPACK QR factorization application, encapsulated as a COP:
// an iterative panel factorization over a 1-D block-cyclic matrix, written
// against the simulated MPI layer and instrumented with SRS checkpointing
// calls. The checkpointed user data is the matrix A and right-hand side B,
// as in the paper.
type QR struct {
	N  int // matrix dimension
	NB int // panel width

	// CheckpointEvery, when positive, makes every rank write a periodic
	// checkpoint each CheckpointEvery panels (committed collectively), so
	// the application can recover from node failures — the fault-tolerance
	// extension previewed in the paper's conclusion. Zero disables it.
	CheckpointEvery int

	grid    *topology.Grid
	rss     *srs.RSS
	bind    *binder.Binder
	weather *nws.Service

	model      *perfmodel.ComponentModel
	maxProcs   int
	donePanels int

	// Telemetry for the performance contract (written by virtual rank 0).
	lastPanelActual    float64
	lastPanelPredicted float64

	curNodes []*topology.Node
	world    *mpi.World
	stopped  bool
}

// NewQR fits the QR component model from small-run profiles (§3.2
// methodology) and returns the COP.
func NewQR(grid *topology.Grid, rss *srs.RSS, b *binder.Binder, w *nws.Service, n, nb int) (*QR, error) {
	if n <= 0 || nb <= 0 || nb > n {
		return nil, fmt.Errorf("apps: bad QR dimensions n=%d nb=%d", n, nb)
	}
	var samples []perfmodel.Sample
	for s := 200.0; s <= 1000; s += 200 {
		samples = append(samples, perfmodel.Sample{
			N:     s,
			Flops: linalg.QRFlops(s),
			Hist:  qrHistogram(s),
		})
	}
	model, err := perfmodel.FitComponent("scalapack-qr", samples, 3, 2)
	if err != nil {
		return nil, err
	}
	return &QR{
		N: n, NB: nb,
		grid: grid, rss: rss, bind: b, weather: w,
		model:    model,
		maxProcs: 8,
	}, nil
}

// qrHistogram synthesizes the memory-reuse-distance histogram of a blocked
// QR at size n (in cache lines): panel-resident reuse, row-sweep reuse, and
// whole-trailing-matrix reuse.
func qrHistogram(n float64) perfmodel.Histogram {
	return perfmodel.Histogram{
		{Dist: 64, Count: 40 * n * n},         // within-block reuse
		{Dist: n / 2, Count: 4 * n * n},       // row sweeps
		{Dist: n * n / 4, Count: 0.5 * n * n}, // trailing-matrix reuse
	}
}

// Name implements cop.COP.
func (q *QR) Name() string { return "scalapack-qr" }

// Pkg implements cop.COP.
func (q *QR) Pkg() binder.Package {
	return binder.Package{
		Name:      "scalapack-qr",
		IRBytes:   400e3,
		Libraries: []string{"scalapack", "blas", "srs", "autopilot"},
		IsMPI:     true,
	}
}

// Mapper implements cop.COP: QR is tightly coupled, so the mapper picks the
// best single-site set (up to maxProcs nodes) by forecast lock-step rate.
func (q *QR) Mapper() cop.Mapper { return cop.GreedyMapper{Width: q.maxProcs, SameSite: true} }

// SetMaxProcs bounds the mapper's width. The metascheduler uses it to fit
// the COP to a requested lease size instead of the default 8.
func (q *QR) SetMaxProcs(k int) {
	if k > 0 {
		q.maxProcs = k
	}
}

// Model implements cop.COP.
func (q *QR) Model() cop.PerformanceModel { return q }

// Panels returns the total number of panel steps.
func (q *QR) Panels() int { return (q.N + q.NB - 1) / q.NB }

// DonePanels returns the progress marker.
func (q *QR) DonePanels() int { return q.donePanels }

// CurNodes returns the nodes of the current (or last) execution segment.
func (q *QR) CurNodes() []*topology.Node { return q.curNodes }

// ckptKey is the stable checkpoint key of one rank in a P-process layout.
func ckptKey(me, nProcs int) string { return fmt.Sprintf("qr.r%dof%d", me, nProcs) }

// commitCheckpoints seals the checkpoint round just written: the restart
// point plus the exact key set of the current layout, so a restore is
// always layout-consistent and can fall back to the previous sealed round
// if this one rots.
func (q *QR) commitCheckpoints(nProcs, marker int) {
	keys := make([]string, nProcs)
	for i := range keys {
		keys[i] = ckptKey(i, nProcs)
	}
	q.rss.Commit(marker, keys)
}

// Rollback implements cop.Recoverable: after a failure, progress reverts to
// the newest checkpoint generation that still verifies (or to the
// beginning when none does).
func (q *QR) Rollback() bool {
	marker, ok := q.rss.PlanRestore()
	q.donePanels = marker
	q.lastPanelActual, q.lastPanelPredicted = 0, 0
	return ok
}

// FailCurrentNode injects a failure of the i-th node of the current
// execution segment, killing the application processes it hosts (the
// fault-injection entry point for experiments and tests). It returns the
// number of processes lost.
func (q *QR) FailCurrentNode(i int) int {
	if q.world == nil || i < 0 || i >= len(q.curNodes) {
		return 0
	}
	return q.world.FailNode(q.curNodes[i].Name())
}

// panelFlops returns the operation count of panel step k (factor the panel
// and update the trailing matrix): the k-th slab of the (4/3)N³ total.
func (q *QR) panelFlops(k int) float64 {
	m := float64(q.N - k*q.NB)
	mNext := float64(q.N - (k+1)*q.NB)
	if mNext < 0 {
		mNext = 0
	}
	return 4.0 / 3.0 * (m*m*m - mNext*mNext*mNext)
}

// remainingFlops returns the operation count left after donePanels.
func (q *QR) remainingFlops() float64 {
	sum := 0.0
	for k := q.donePanels; k < q.Panels(); k++ {
		sum += q.panelFlops(k)
	}
	return sum
}

// lockstepRate returns the aggregate rate of a node set under per-node
// availability: panel synchronization paces everyone at the slowest node.
func lockstepRate(nodes []*topology.Node, avail func(*topology.Node) float64) float64 {
	if len(nodes) == 0 {
		return 0
	}
	slowest := math.Inf(1)
	for _, n := range nodes {
		a := 1.0
		if avail != nil {
			a = avail(n)
		}
		if r := n.Spec.Flops() * a; r < slowest {
			slowest = r
		}
	}
	return slowest * float64(len(nodes))
}

// RemainingTime implements cop.PerformanceModel: remaining compute at the
// lock-step rate plus the remaining panel-broadcast communication.
func (q *QR) RemainingTime(nodes []*topology.Node, avail func(*topology.Node) float64) float64 {
	rate := lockstepRate(nodes, avail)
	if rate <= 0 {
		return math.Inf(1)
	}
	t := q.remainingFlops() / rate
	// Panel broadcasts: each remaining panel moves (rows x NB) doubles
	// across the site LAN.
	if len(nodes) > 0 {
		lan := nodes[0].Site().LAN
		commBytes := 0.0
		for k := q.donePanels; k < q.Panels(); k++ {
			rows := float64(q.N - k*q.NB)
			commBytes += rows * float64(q.NB) * 8
		}
		t += commBytes/lan.Capacity() + float64(q.Panels()-q.donePanels)*lan.Latency()*2
	}
	return t
}

// ProgressVersion implements rescheduler.ProgressVersioned: the panel count
// is the only mutable state RemainingTime reads.
func (q *QR) ProgressVersion() int64 { return int64(q.donePanels) }

// CheckpointBytes implements cop.PerformanceModel: matrix A plus vector B.
func (q *QR) CheckpointBytes() float64 {
	n := float64(q.N)
	return (n*n + n) * 8
}

// RestartOverhead implements cop.PerformanceModel: resource selection,
// modeling, bind and launch on a fresh node set.
func (q *QR) RestartOverhead() float64 {
	nodes := q.curNodes
	if len(nodes) == 0 {
		nodes = q.grid.Nodes()
		if len(nodes) > q.maxProcs {
			nodes = nodes[:q.maxProcs]
		}
	}
	return 2 + 10 + q.bind.EstimateOverhead(q.Pkg(), nodes) + 8
}

// PredictedPanelSensor and ActualPanelSensor expose the §4.1.1 contract
// signals: the duration the performance model promised for the most recent
// panel and the duration actually measured by the inserted sensors.
func (q *QR) PredictedPanelSensor() func() (float64, bool) {
	return func() (float64, bool) { return q.lastPanelPredicted, q.lastPanelPredicted > 0 }
}

// ActualPanelSensor returns the measured-duration sensor.
func (q *QR) ActualPanelSensor() func() (float64, bool) {
	return func() (float64, bool) { return q.lastPanelActual, q.lastPanelActual > 0 }
}

// Run implements cop.COP: one execution segment on nodes. With restart set
// the segment begins by reading and redistributing the previous segment's
// checkpoints (N-to-M).
func (q *QR) Run(p *simcore.Proc, nodes []*topology.Node, restart bool) (cop.RunReport, error) {
	sim := q.grid.Sim
	q.curNodes = nodes
	q.stopped = false
	// Reset the contract telemetry: the new segment promises new numbers.
	q.lastPanelActual, q.lastPanelPredicted = 0, 0
	startPanel := q.donePanels
	nProcs := len(nodes)
	world := mpi.NewWorld(sim, q.grid, "qr", nodes)
	q.world = world
	comm := world.WorldComm()

	// Nominal per-panel prediction for the contract (full availability:
	// that is what the application promised at launch). The prediction
	// must include communication, or the shrinking late panels — which are
	// latency-dominated — would show inflated ratios and fake violations.
	nominalRate := lockstepRate(nodes, nil)
	lan := nodes[0].Site().LAN
	depth := 0
	for 1<<depth < len(nodes) {
		depth++
	}
	predictPanel := func(k int) float64 {
		rows := float64(q.N - k*q.NB)
		bcast := float64(depth) * (lan.Latency() + rows*float64(q.NB)*8/lan.Capacity())
		verdict := float64(depth) * (lan.Latency() + 64/lan.Capacity())
		return q.panelFlops(k)/nominalRate + bcast + verdict
	}

	libs := make([]*srs.Lib, nProcs)
	segStart := p.Now()
	world.Start(func(ctx *mpi.Ctx) {
		me := ctx.PhysRank()
		lib := srs.Attach(q.rss, ctx)
		libs[me] = lib
		if restart {
			if _, err := lib.RestoreShare(me, nProcs); err != nil {
				world.Fail(err)
				return
			}
		}
		for k := startPanel; k < q.Panels(); k++ {
			panelStart := ctx.Now()
			rows := float64(q.N - k*q.NB)
			// Panel broadcast from its block-cyclic owner.
			if _, err := comm.Bcast(ctx, k%nProcs, rows*float64(q.NB)*8, nil); err != nil {
				world.Fail(err)
				return
			}
			// Local share of the panel factorization + trailing update.
			if err := ctx.Compute(q.panelFlops(k) / float64(nProcs)); err != nil {
				world.Fail(err)
				return
			}
			ctx.MarkIteration(k + 1)
			if me == 0 {
				q.donePanels = k + 1
				// Skip the segment's warm-up panel: it includes waiting
				// for peers still reading checkpoints, which is not an
				// execution-rate signal.
				if k > startPanel {
					q.lastPanelActual = ctx.Now() - panelStart
					q.lastPanelPredicted = predictPanel(k)
				}
			}
			// The stop check must be collective: rank 0 reads the SRS flag
			// and broadcasts the verdict so every rank stops after the
			// same panel (otherwise the next panel's broadcast deadlocks).
			stop := 0
			if me == 0 && lib.NeedStop() {
				stop = 1
			}
			verdict, err := comm.Bcast(ctx, 0, 64, stop)
			if err != nil {
				world.Fail(err)
				return
			}
			if verdict.(int) == 1 {
				if err := lib.StoreCheckpoint(ckptKey(me, nProcs), q.CheckpointBytes()/float64(nProcs)); err != nil {
					world.Fail(err)
					return
				}
				if me == 0 {
					q.commitCheckpoints(nProcs, q.donePanels)
					q.stopped = true
				}
				lib.AckStopped()
				return
			}
			// Periodic fault-tolerance checkpoint: every rank writes its
			// share, a barrier makes the set complete, then rank 0 commits
			// the restart point.
			if q.CheckpointEvery > 0 && (k+1-startPanel)%q.CheckpointEvery == 0 && k+1 < q.Panels() {
				if err := lib.StoreCheckpoint(ckptKey(me, nProcs), q.CheckpointBytes()/float64(nProcs)); err != nil {
					world.Fail(err)
					return
				}
				if err := comm.Barrier(ctx); err != nil {
					world.Fail(err)
					return
				}
				if me == 0 {
					q.commitCheckpoints(nProcs, k+1)
				}
			}
		}
	})
	if err := world.Wait(p); err != nil {
		return cop.RunReport{}, err
	}
	// Zero the contract telemetry: between segments (during restart
	// overheads) there is no execution for the monitor to judge, and stale
	// loaded-segment ratios must not trigger phantom violations.
	q.lastPanelActual, q.lastPanelPredicted = 0, 0
	if err := world.Err(); err != nil {
		return cop.RunReport{}, err
	}
	elapsed := p.Now() - segStart
	var maxWrite, maxRead float64
	for _, lib := range libs {
		if lib == nil {
			continue
		}
		if w := lib.CheckpointWriteTime(); w > maxWrite {
			maxWrite = w
		}
		if r := lib.CheckpointReadTime(); r > maxRead {
			maxRead = r
		}
	}
	return cop.RunReport{
		Stopped:   q.stopped,
		Duration:  elapsed - maxWrite - maxRead,
		CkptWrite: maxWrite,
		CkptRead:  maxRead,
	}, nil
}
