package apps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"grads/internal/linalg"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// pqrGrid builds a small single-site grid with p nodes.
func pqrGrid(p int) (*simcore.Sim, *topology.Grid, []*topology.Node) {
	sim := simcore.New(1)
	g := topology.NewGrid(sim)
	g.AddSite("A", 1e8, 1e-4)
	var nodes []*topology.Node
	for i := 0; i < p; i++ {
		nodes = append(nodes, g.AddNode(topology.NodeSpec{
			Name: "n" + string(rune('a'+i)), Site: "A", MHz: 1000, FlopsPerCycle: 1,
		}))
	}
	return sim, g, nodes
}

// checkRTR verifies AᵀA == RᵀR (the QR identity that does not need Q).
func checkRTR(t testing.TB, a, r *linalg.Matrix, tol float64) {
	t.Helper()
	ata := a.Transpose().Mul(a)
	rtr := r.Transpose().Mul(r)
	if diff := ata.MaxAbsDiff(rtr); diff > tol {
		t.Fatalf("AᵀA vs RᵀR differ by %v", diff)
	}
}

func TestParallelQRMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := linalg.Random(rng, 40, 40)
	sim, g, nodes := pqrGrid(4)
	res, err := RunParallelQR(sim, g, nodes, a, 5)
	if err != nil {
		t.Fatalf("RunParallelQR: %v", err)
	}
	checkRTR(t, a, res.R, 1e-9)
	// R is upper triangular.
	for i := 0; i < res.R.Rows; i++ {
		for j := 0; j < i && j < res.R.Cols; j++ {
			if res.R.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %v below diagonal", i, j, res.R.At(i, j))
			}
		}
	}
	// Same factor as the sequential QR up to row signs.
	_, rSeq := linalg.QR(a)
	for i := 0; i < 40; i++ {
		signP, signS := 1.0, 1.0
		if res.R.At(i, i) < 0 {
			signP = -1
		}
		if rSeq.At(i, i) < 0 {
			signS = -1
		}
		for j := i; j < 40; j++ {
			d := signP*res.R.At(i, j) - signS*rSeq.At(i, j)
			if d > 1e-9 || d < -1e-9 {
				t.Fatalf("R mismatch at (%d,%d): %v vs %v", i, j, res.R.At(i, j), rSeq.At(i, j))
			}
		}
	}
	if res.VirtualTime <= 0 || res.Flops <= 0 || res.BytesMoved <= 0 {
		t.Fatalf("costs not charged: %+v", res)
	}
}

func TestParallelQRTallMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := linalg.Random(rng, 50, 20)
	sim, g, nodes := pqrGrid(3)
	res, err := RunParallelQR(sim, g, nodes, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkRTR(t, a, res.R, 1e-9)
}

func TestParallelQRSingleRank(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := linalg.Random(rng, 16, 16)
	sim, g, nodes := pqrGrid(1)
	res, err := RunParallelQR(sim, g, nodes, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkRTR(t, a, res.R, 1e-10)
}

func TestParallelQRBadArgs(t *testing.T) {
	sim, g, nodes := pqrGrid(2)
	a := linalg.NewMatrix(4, 4)
	if _, err := RunParallelQR(sim, g, nil, a, 2); err == nil {
		t.Fatal("no nodes accepted")
	}
	if _, err := RunParallelQR(sim, g, nodes, a, 0); err == nil {
		t.Fatal("bad block size accepted")
	}
}

// Property: for random shapes, block sizes and rank counts, the distributed
// factorization preserves AᵀA = RᵀR.
func TestQuickParallelQRIdentity(t *testing.T) {
	f := func(seed int64, mRaw, nRaw, nbRaw, pRaw uint8) bool {
		m := int(mRaw%12) + 4
		n := int(nRaw%10) + 2
		if n > m {
			n = m
		}
		nb := int(nbRaw%4) + 1
		p := int(pRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		a := linalg.Random(rng, m, n)
		sim, g, nodes := pqrGrid(p)
		res, err := RunParallelQR(sim, g, nodes, a, nb)
		if err != nil {
			return false
		}
		ata := a.Transpose().Mul(a)
		rtr := res.R.Transpose().Mul(res.R)
		return ata.MaxAbsDiff(rtr) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(91))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
