package apps

import (
	"fmt"
	"math"

	"grads/internal/linalg"
	"grads/internal/mpi"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// ParallelQRResult carries the outcome of a real distributed factorization.
type ParallelQRResult struct {
	R           *linalg.Matrix // upper-triangular factor, collected at rank 0
	VirtualTime float64        // emulated execution time
	Flops       float64        // operations charged to the CPUs
	BytesMoved  float64        // reflector broadcast volume
}

// RunParallelQR performs a REAL Householder QR factorization of a,
// distributed 1-D block-cyclically (block size nb) over one MPI rank per
// node, with reflector broadcasts carrying actual vector payloads through
// the simulated network and the arithmetic charged to the simulated CPUs.
// It validates that the message-passing substrate carries real numerical
// applications, not just cost models. The returned R satisfies AᵀA = RᵀR.
//
// The algorithm is unblocked column Householder: the owner of global
// column j forms the reflector from its local data and broadcasts it; all
// ranks apply it to their local columns to the right of j.
func RunParallelQR(sim *simcore.Sim, grid *topology.Grid, nodes []*topology.Node, a *linalg.Matrix, nb int) (*ParallelQRResult, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("apps: parallel QR needs nodes")
	}
	if nb <= 0 {
		return nil, fmt.Errorf("apps: bad block size %d", nb)
	}
	p := len(nodes)
	m, n := a.Rows, a.Cols
	dist := linalg.BlockCyclic{N: n, NB: nb, P: p}
	locals := linalg.Distribute(a, nb, p)

	world := mpi.NewWorld(sim, grid, "pqr", nodes)
	comm := world.WorldComm()
	res := &ParallelQRResult{}
	panels := make([]*linalg.Matrix, p)
	start := sim.Now()

	world.Start(func(ctx *mpi.Ctx) {
		me := ctx.PhysRank()
		local := locals[me].Clone()
		myCols := dist.GlobalCols(me)
		// localIdx maps a global column index to its local position.
		localIdx := make(map[int]int, len(myCols))
		for li, gj := range myCols {
			localIdx[gj] = li
		}

		steps := n
		if m-1 < steps {
			steps = m - 1
		}
		for j := 0; j < steps; j++ {
			owner := dist.Owner(j)
			var v []float64 // Householder vector over rows j..m-1
			var vnorm float64
			if me == owner {
				lj := localIdx[j]
				norm := 0.0
				for i := j; i < m; i++ {
					x := local.At(i, lj)
					norm += x * x
				}
				norm = math.Sqrt(norm)
				v = make([]float64, m-j)
				if norm != 0 {
					alpha := -norm
					if local.At(j, lj) < 0 {
						alpha = norm
					}
					for i := j; i < m; i++ {
						v[i-j] = local.At(i, lj)
					}
					v[0] -= alpha
					for _, x := range v {
						vnorm += x * x
					}
				}
				// Forming the reflector costs ~3(m-j) flops.
				if err := ctx.Compute(3 * float64(m-j)); err != nil {
					world.Fail(err)
					return
				}
			}
			// Broadcast the reflector (payload carries the actual data).
			payload, err := comm.Bcast(ctx, owner, float64(m-j)*8, reflector{v: v, vnorm: vnorm})
			if err != nil {
				world.Fail(err)
				return
			}
			refl := payload.(reflector)
			if refl.vnorm == 0 {
				continue
			}
			// Apply H = I - 2vvᵀ/(vᵀv) to local columns with global
			// index >= j.
			applied := 0
			for li, gj := range myCols {
				if gj < j {
					continue
				}
				dot := 0.0
				for i := j; i < m; i++ {
					dot += refl.v[i-j] * local.At(i, li)
				}
				f := 2 * dot / refl.vnorm
				for i := j; i < m; i++ {
					local.Set(i, li, local.At(i, li)-f*refl.v[i-j])
				}
				applied++
			}
			if err := ctx.Compute(4 * float64(m-j) * float64(applied)); err != nil {
				world.Fail(err)
				return
			}
		}
		// Collect local panels at rank 0 (real payloads again).
		gathered, err := comm.Gather(ctx, 0, float64(local.Rows*local.Cols)*8, local)
		if err != nil {
			world.Fail(err)
			return
		}
		if me == 0 {
			for i, g := range gathered {
				panels[i] = g.(*linalg.Matrix)
			}
		}
	})

	var waitErr error
	sim.Spawn("pqr-wait", func(p *simcore.Proc) { waitErr = world.Wait(p) })
	sim.Run()
	if waitErr != nil {
		return nil, waitErr
	}
	if err := world.Err(); err != nil {
		return nil, err
	}
	r := linalg.Collect(panels, nb)
	// Clean numerical dust below the diagonal.
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < r.Cols && j < i; j++ {
			r.Set(i, j, 0)
		}
	}
	res.R = r
	res.VirtualTime = sim.Now() - start
	for i := 0; i < world.Size(); i++ {
		prof := world.Rank(i).Profile()
		res.Flops += prof.Flops
		res.BytesMoved += prof.BytesSent
	}
	return res, nil
}

// reflector is the broadcast payload: the Householder vector and its
// squared norm.
type reflector struct {
	v     []float64
	vnorm float64
}
