package apps

import (
	"fmt"

	"grads/internal/mpi"
	"grads/internal/swap"
)

// NBody is the iterative N-body simulation used by the §4.2 process-swapping
// experiments: each iteration every active process computes the pairwise
// forces for its share of the bodies and the positions are exchanged with an
// all-gather.
type NBody struct {
	Bodies       int
	Iterations   int
	FlopsPerPair float64 // operations per body-pair interaction
}

// NewNBody creates the benchmark configuration.
func NewNBody(bodies, iterations int) *NBody {
	return &NBody{Bodies: bodies, Iterations: iterations, FlopsPerPair: 20}
}

// IterFlops returns the total operation count of one iteration (O(n²)
// direct summation).
func (nb *NBody) IterFlops() float64 {
	n := float64(nb.Bodies)
	return nb.FlopsPerPair * n * n
}

// PositionBytes returns the volume of the per-iteration position exchange
// contributed by each process (3 doubles per body over P processes).
func (nb *NBody) PositionBytes(nProcs int) float64 {
	return float64(nb.Bodies) * 24 / float64(nProcs)
}

// StateBytes returns the per-process application state a swap must move
// (positions, velocities and masses of the process's share of the bodies).
func (nb *NBody) StateBytes(nProcs int) float64 {
	return float64(nb.Bodies) * 56 / float64(nProcs)
}

// Body returns the swap-runtime iteration body for an active set of
// nActive processes.
func (nb *NBody) Body(nActive int) swap.Body {
	return func(ctx *mpi.Ctx, comm *mpi.Comm, vrank, iter int) error {
		if comm.Size() != nActive {
			return fmt.Errorf("nbody: active set size %d, expected %d", comm.Size(), nActive)
		}
		if err := ctx.Compute(nb.IterFlops() / float64(nActive)); err != nil {
			return err
		}
		_, err := comm.Allgather(ctx, nb.PositionBytes(nActive), nil)
		return err
	}
}
