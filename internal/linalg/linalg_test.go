package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.At(0, 0) != 0 {
		t.Fatal("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone aliases data")
	}
	id := Identity(3)
	if id.At(0, 0) != 1 || id.At(0, 1) != 0 {
		t.Fatal("Identity wrong")
	}
}

func TestMulAndTranspose(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	// a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		a.Data[i] = v
	}
	for i, v := range []float64{7, 8, 9, 10, 11, 12} {
		b.Data[i] = v
	}
	p := a.Mul(b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if p.Data[i] != v {
			t.Fatalf("Mul = %v, want %v", p.Data, want)
		}
	}
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Fatalf("Transpose wrong: %+v", at)
	}
}

func TestQRReconstructsAndOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := Random(rng, n, n)
		q, r := QR(a)
		// Q*R == A
		if diff := q.Mul(r).MaxAbsDiff(a); diff > 1e-9 {
			t.Fatalf("n=%d: QR reconstruction error %v", n, diff)
		}
		// QᵀQ == I
		if diff := q.Transpose().Mul(q).MaxAbsDiff(Identity(n)); diff > 1e-9 {
			t.Fatalf("n=%d: Q not orthogonal: %v", n, diff)
		}
		// R upper triangular
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatalf("n=%d: R(%d,%d) = %v below diagonal", n, i, j, r.At(i, j))
				}
			}
		}
	}
}

func TestQRTallMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Random(rng, 30, 10)
	q, r := QR(a)
	if diff := q.Mul(r).MaxAbsDiff(a); diff > 1e-9 {
		t.Fatalf("tall QR reconstruction error %v", diff)
	}
	if diff := q.Transpose().Mul(q).MaxAbsDiff(Identity(30)); diff > 1e-9 {
		t.Fatalf("tall Q not orthogonal: %v", diff)
	}
}

func TestQRFlopsCurve(t *testing.T) {
	if QRFlops(1000) != 4.0/3.0*1e9 {
		t.Fatalf("QRFlops(1000) = %v", QRFlops(1000))
	}
}

func TestBlockCyclicOwnership(t *testing.T) {
	d := BlockCyclic{N: 10, NB: 2, P: 3}
	// Blocks: [0 1][2 3][4 5][6 7][8 9] owned by procs 0,1,2,0,1.
	wantOwner := []int{0, 0, 1, 1, 2, 2, 0, 0, 1, 1}
	for j, w := range wantOwner {
		if d.Owner(j) != w {
			t.Fatalf("Owner(%d) = %d, want %d", j, d.Owner(j), w)
		}
	}
	if d.LocalCols(0) != 4 || d.LocalCols(1) != 4 || d.LocalCols(2) != 2 {
		t.Fatalf("LocalCols = %d %d %d", d.LocalCols(0), d.LocalCols(1), d.LocalCols(2))
	}
	if cols := d.GlobalCols(2); len(cols) != 2 || cols[0] != 4 || cols[1] != 5 {
		t.Fatalf("GlobalCols(2) = %v", cols)
	}
}

func TestDistributeCollectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Random(rng, 7, 13)
	locals := Distribute(a, 3, 4)
	back := Collect(locals, 3)
	if diff := back.MaxAbsDiff(a); diff != 0 {
		t.Fatalf("round trip error %v", diff)
	}
}

func TestRedistributePreservesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Random(rng, 9, 16)
	locals4 := Distribute(a, 2, 4)
	locals12 := Redistribute(locals4, 2, 12) // N=4 -> M=12 processors
	back := Collect(locals12, 2)
	if diff := back.MaxAbsDiff(a); diff != 0 {
		t.Fatalf("4->12 redistribution error %v", diff)
	}
	locals3 := Redistribute(locals12, 2, 3) // shrink again
	if diff := Collect(locals3, 2).MaxAbsDiff(a); diff != 0 {
		t.Fatalf("12->3 redistribution error %v", diff)
	}
}

func TestRedistributeVolume(t *testing.T) {
	// Same p -> q: nothing moves.
	if v := RedistributeVolume(100, 40, 4, 4, 4); v != 0 {
		t.Fatalf("same-layout volume = %d, want 0", v)
	}
	// p=1 -> q=2 with nb=1: every odd block changes owner.
	v := RedistributeVolume(10, 8, 1, 1, 2)
	if v != 40 { // columns 1,3,5,7 move, 10 rows each
		t.Fatalf("volume = %d, want 40", v)
	}
	// Volume never exceeds the whole matrix.
	if v := RedistributeVolume(10, 8, 1, 3, 5); v > 80 {
		t.Fatalf("volume %d exceeds matrix size", v)
	}
}

// Property: distribute/collect is lossless for arbitrary shapes, block sizes
// and process counts.
func TestQuickDistributeRoundTrip(t *testing.T) {
	f := func(rows, cols, nb, p uint8) bool {
		r := int(rows%12) + 1
		c := int(cols%20) + 1
		b := int(nb%5) + 1
		np := int(p%6) + 1
		rng := rand.New(rand.NewSource(int64(r*c + b + np)))
		a := Random(rng, r, c)
		return Collect(Distribute(a, b, np), b).MaxAbsDiff(a) == 0
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(51))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: QR of random matrices reconstructs within tolerance and Q stays
// orthogonal (backward stability at small sizes).
func TestQuickQRInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 1
		rng := rand.New(rand.NewSource(seed))
		a := Random(rng, n, n)
		q, r := QR(a)
		scale := 1.0
		if q.Mul(r).MaxAbsDiff(a) > 1e-9*scale {
			return false
		}
		return q.Transpose().Mul(q).MaxAbsDiff(Identity(n)) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(52))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched shapes should panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}
