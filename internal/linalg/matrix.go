// Package linalg provides the real dense linear algebra used to validate
// the simulated ScaLAPACK QR application: matrices, Householder QR
// factorization, and the 1-D block-cyclic distribution (with N-to-M
// redistribution) that the SRS checkpointing library must preserve across
// migrations.
package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Random fills a new matrix with uniform values in [-1, 1).
func Random(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// Identity returns the n-by-n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MaxAbsDiff returns the max absolute elementwise difference between two
// same-shaped matrices.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: shape mismatch")
	}
	max := 0.0
	for i, v := range m.Data {
		if d := math.Abs(v - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// QR computes the full Householder QR factorization A = Q R with Q
// orthogonal (m-by-m) and R upper triangular (m-by-n). A is not modified.
// It is meant for validation at modest sizes, not performance.
func QR(a *Matrix) (q, r *Matrix) {
	m, n := a.Rows, a.Cols
	r = a.Clone()
	q = Identity(m)
	v := make([]float64, m)
	for k := 0; k < n && k < m-1; k++ {
		// Householder vector for column k below the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			norm += r.At(i, k) * r.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := -norm
		if r.At(k, k) < 0 {
			alpha = norm
		}
		vnorm := 0.0
		for i := k; i < m; i++ {
			v[i] = r.At(i, k)
			if i == k {
				v[i] -= alpha
			}
			vnorm += v[i] * v[i]
		}
		if vnorm == 0 {
			continue
		}
		// Apply H = I - 2 v vᵀ / (vᵀv) to R (columns k..n-1).
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i] * r.At(i, j)
			}
			f := 2 * dot / vnorm
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-f*v[i])
			}
		}
		// Accumulate Q = Q * H.
		for i := 0; i < m; i++ {
			dot := 0.0
			for j := k; j < m; j++ {
				dot += q.At(i, j) * v[j]
			}
			f := 2 * dot / vnorm
			for j := k; j < m; j++ {
				q.Set(i, j, q.At(i, j)-f*v[j])
			}
		}
	}
	// Clean numerical dust below the diagonal.
	for i := 0; i < m; i++ {
		for j := 0; j < n && j < i; j++ {
			r.Set(i, j, 0)
		}
	}
	return q, r
}

// QRFlops returns the approximate operation count of Householder QR on an
// n-by-n matrix: (4/3)n³. This is the curve the performance model fits.
func QRFlops(n float64) float64 { return 4.0 / 3.0 * n * n * n }
