package linalg

import "fmt"

// BlockCyclic describes a 1-D column block-cyclic distribution of an n-column
// matrix over p processes with block size nb, as ScaLAPACK uses. Column j
// lives in global block j/nb, owned by process (j/nb) mod p.
type BlockCyclic struct {
	N  int // global columns
	NB int // block size
	P  int // processes
}

// Owner returns the process owning global column j.
func (d BlockCyclic) Owner(j int) int { return (j / d.NB) % d.P }

// LocalCols returns how many global columns process p owns.
func (d BlockCyclic) LocalCols(p int) int {
	count := 0
	for b := 0; b*d.NB < d.N; b++ {
		if b%d.P != p {
			continue
		}
		lo := b * d.NB
		hi := lo + d.NB
		if hi > d.N {
			hi = d.N
		}
		count += hi - lo
	}
	return count
}

// GlobalCols returns, in ascending order, the global column indices owned by
// process p.
func (d BlockCyclic) GlobalCols(p int) []int {
	var cols []int
	for b := 0; b*d.NB < d.N; b++ {
		if b%d.P != p {
			continue
		}
		for j := b * d.NB; j < (b+1)*d.NB && j < d.N; j++ {
			cols = append(cols, j)
		}
	}
	return cols
}

// Distribute splits a into per-process local column panels under the
// distribution (m rows each, LocalCols(p) columns, in owned-column order).
func Distribute(a *Matrix, nb, p int) []*Matrix {
	if nb <= 0 || p <= 0 {
		panic("linalg: bad distribution parameters")
	}
	d := BlockCyclic{N: a.Cols, NB: nb, P: p}
	locals := make([]*Matrix, p)
	for proc := 0; proc < p; proc++ {
		cols := d.GlobalCols(proc)
		local := NewMatrix(a.Rows, len(cols))
		for lj, gj := range cols {
			for i := 0; i < a.Rows; i++ {
				local.Set(i, lj, a.At(i, gj))
			}
		}
		locals[proc] = local
	}
	return locals
}

// Collect reassembles the global matrix from local panels distributed with
// block size nb.
func Collect(locals []*Matrix, nb int) *Matrix {
	if len(locals) == 0 {
		panic("linalg: no local panels")
	}
	p := len(locals)
	rows := locals[0].Rows
	n := 0
	for _, l := range locals {
		if l.Rows != rows {
			panic("linalg: ragged local panels")
		}
		n += l.Cols
	}
	d := BlockCyclic{N: n, NB: nb, P: p}
	out := NewMatrix(rows, n)
	for proc := 0; proc < p; proc++ {
		cols := d.GlobalCols(proc)
		if len(cols) != locals[proc].Cols {
			panic(fmt.Sprintf("linalg: panel %d has %d cols, distribution says %d",
				proc, locals[proc].Cols, len(cols)))
		}
		for lj, gj := range cols {
			for i := 0; i < rows; i++ {
				out.Set(i, gj, locals[proc].At(i, lj))
			}
		}
	}
	return out
}

// Redistribute converts local panels from a p-process block-cyclic layout to
// a q-process one with the same block size — the N-to-M data redistribution
// SRS performs transparently when an application restarts on a different
// processor count.
func Redistribute(locals []*Matrix, nb, q int) []*Matrix {
	global := Collect(locals, nb)
	return Distribute(global, nb, q)
}

// RedistributeVolume returns the number of matrix elements that must move
// between processes when an n-column, m-row matrix goes from p to q
// processes with block size nb (elements whose owner changes). This drives
// the simulated cost of checkpoint redistribution.
func RedistributeVolume(mRows, n, nb, p, q int) int {
	from := BlockCyclic{N: n, NB: nb, P: p}
	to := BlockCyclic{N: n, NB: nb, P: q}
	moved := 0
	for j := 0; j < n; j++ {
		if from.Owner(j) != to.Owner(j) {
			moved += mRows
		}
	}
	return moved
}
