package swap

import (
	"testing"

	"grads/internal/mpi"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// rig: MicroGrid-style testbed — 3 UTK + 3 UIUC nodes; world over all 6.
type rig struct {
	sim   *simcore.Sim
	grid  *topology.Grid
	world *mpi.World
	nodes []*topology.Node
}

func newRig() *rig {
	sim := simcore.New(1)
	g := topology.MicroGridTestbed(sim)
	var nodes []*topology.Node
	for _, n := range g.Site("UTK").Nodes() {
		nodes = append(nodes, n)
	}
	for _, n := range g.Site("UIUC").Nodes() {
		nodes = append(nodes, n)
	}
	return &rig{sim: sim, grid: g, world: mpi.NewWorld(sim, g, "nbody", nodes), nodes: nodes}
}

// iterBody is a trivial compute+allreduce iteration.
func iterBody(flops float64) Body {
	return func(ctx *mpi.Ctx, comm *mpi.Comm, vrank, iter int) error {
		if err := ctx.Compute(flops); err != nil {
			return err
		}
		_, err := comm.Allreduce(ctx, 1e3, nil, nil)
		return err
	}
}

func TestRunWithoutSwapsCompletes(t *testing.T) {
	r := newRig()
	rt := NewRuntime(r.world, 3, 1e6)
	rt.Run(r.sim, iterBody(1e8), 10)
	r.sim.Run()
	if r.world.Running() != 0 {
		t.Fatalf("%d processes still running (inactive pool not dismissed?)", r.world.Running())
	}
	prog := rt.Progress()
	if len(prog) != 10 || prog[9].Iter != 10 {
		t.Fatalf("progress = %v", prog)
	}
	if rt.Swaps() != 0 {
		t.Fatalf("spurious swaps: %d", rt.Swaps())
	}
	if r.world.Err() != nil {
		t.Fatalf("world error: %v", r.world.Err())
	}
}

func TestManualSwapMovesRole(t *testing.T) {
	r := newRig()
	rt := NewRuntime(r.world, 3, 1e6)
	// After ~3 iterations, move virtual rank 1 to phys 4 (a UIUC node).
	r.sim.Schedule(1.0, func() {
		if err := rt.RequestSwap(1, 4); err != nil {
			t.Errorf("RequestSwap: %v", err)
		}
	})
	rt.Run(r.sim, iterBody(1e8), 12)
	r.sim.Run()
	if r.world.Err() != nil {
		t.Fatalf("world error: %v", r.world.Err())
	}
	if rt.Swaps() != 1 {
		t.Fatalf("swaps = %d, want 1", rt.Swaps())
	}
	if got := rt.ActiveComm().Phys(1); got != 4 {
		t.Fatalf("vrank 1 now at phys %d, want 4", got)
	}
	// The old phys 1 is inactive again; total progress completes.
	inact := rt.InactivePhys()
	found := false
	for _, p := range inact {
		if p == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("phys 1 not returned to inactive pool: %v", inact)
	}
	if prog := rt.Progress(); len(prog) == 0 || prog[len(prog)-1].Iter != 12 {
		t.Fatalf("app did not finish all iterations: %v", prog)
	}
	if r.world.Running() != 0 {
		t.Fatalf("%d processes leaked", r.world.Running())
	}
}

func TestSwapImprovesProgressUnderLoad(t *testing.T) {
	run := func(withSwap bool) float64 {
		r := newRig()
		rt := NewRuntime(r.world, 3, 1e6)
		// Load all three UTK nodes at t=2 (heavy competing load).
		r.sim.Schedule(2, func() {
			for _, n := range r.grid.Site("UTK").Nodes() {
				n.CPU.SetExternalLoad(4)
			}
		})
		if withSwap {
			// Swap all three actives to the free UIUC nodes at t=4.
			r.sim.Schedule(4, func() {
				rt.RequestSwap(0, 3)
				rt.RequestSwap(1, 4)
				rt.RequestSwap(2, 5)
			})
		}
		rt.Run(r.sim, iterBody(2e8), 30)
		end := r.sim.Run()
		if r.world.Err() != nil {
			t.Fatalf("world error: %v", r.world.Err())
		}
		return end
	}
	loaded := run(false)
	swapped := run(true)
	if swapped >= loaded {
		t.Fatalf("swapping (%.1fs) did not beat staying loaded (%.1fs)", swapped, loaded)
	}
}

func TestRequestSwapValidation(t *testing.T) {
	r := newRig()
	rt := NewRuntime(r.world, 3, 0)
	if err := rt.RequestSwap(7, 4); err == nil {
		t.Fatal("out-of-range vrank accepted")
	}
	if err := rt.RequestSwap(0, 1); err == nil {
		t.Fatal("swap to an active phys accepted")
	}
	if err := rt.RequestSwap(0, 4); err != nil {
		t.Fatalf("valid swap rejected: %v", err)
	}
	if err := rt.RequestSwap(0, 5); err == nil {
		t.Fatal("conflicting vrank accepted")
	}
	if err := rt.RequestSwap(1, 4); err == nil {
		t.Fatal("conflicting target accepted")
	}
}

func TestGreedyPolicy(t *testing.T) {
	p := GreedyPolicy{Gain: 1.5}
	active := []Candidate{
		{Phys: 0, VRank: 0, Speed: 100},
		{Phys: 1, VRank: 1, Speed: 20}, // slow
		{Phys: 2, VRank: 2, Speed: 90},
	}
	inactive := []Candidate{
		{Phys: 3, VRank: -1, Speed: 80},
		{Phys: 4, VRank: -1, Speed: 25},
	}
	orders := p.Decide(active, inactive)
	if len(orders) != 1 || orders[0].VRank != 1 || orders[0].ToPhys != 3 {
		t.Fatalf("orders = %+v, want slowest active -> fastest inactive", orders)
	}
	// No inactive fast enough: no orders.
	if got := p.Decide(active, []Candidate{{Phys: 3, Speed: 25}}); len(got) != 0 {
		t.Fatalf("marginal swap ordered: %+v", got)
	}
}

func TestThresholdPolicy(t *testing.T) {
	p := ThresholdPolicy{Fraction: 0.5}
	active := []Candidate{
		{Phys: 0, VRank: 0, Speed: 100},
		{Phys: 1, VRank: 1, Speed: 10}, // below half the median
		{Phys: 2, VRank: 2, Speed: 95},
	}
	inactive := []Candidate{{Phys: 5, VRank: -1, Speed: 60}}
	orders := p.Decide(active, inactive)
	if len(orders) != 1 || orders[0].VRank != 1 || orders[0].ToPhys != 5 {
		t.Fatalf("orders = %+v", orders)
	}
	if got := (NonePolicy{}).Decide(active, inactive); got != nil {
		t.Fatalf("NonePolicy decided %+v", got)
	}
}

func TestGangPolicyMovesWholeActiveSet(t *testing.T) {
	site := map[int]string{0: "UTK", 1: "UTK", 2: "UTK", 3: "UIUC", 4: "UIUC", 5: "UIUC"}
	p := GangPolicy{Gain: 1.2, SiteOf: func(phys int) string { return site[phys] }}
	active := []Candidate{
		{Phys: 0, VRank: 0, Speed: 2.2e8},
		{Phys: 1, VRank: 1, Speed: 0.73e8}, // loaded: paces the gang
		{Phys: 2, VRank: 2, Speed: 2.2e8},
	}
	inactive := []Candidate{
		{Phys: 3, VRank: -1, Speed: 1.8e8},
		{Phys: 4, VRank: -1, Speed: 1.8e8},
		{Phys: 5, VRank: -1, Speed: 1.8e8},
	}
	orders := p.Decide(active, inactive)
	if len(orders) != 3 {
		t.Fatalf("gang policy moved %d ranks, want all 3: %+v", len(orders), orders)
	}
	targets := map[int]bool{}
	for _, o := range orders {
		if site[o.ToPhys] != "UIUC" {
			t.Fatalf("order %+v not to UIUC", o)
		}
		if targets[o.ToPhys] {
			t.Fatalf("duplicate target in %+v", orders)
		}
		targets[o.ToPhys] = true
	}
	// Healthy gang: no orders (UIUC lock-step 5.4e8 < UTK 6.6e8).
	active[1].Speed = 2.2e8
	if got := p.Decide(active, inactive); len(got) != 0 {
		t.Fatalf("healthy gang moved: %+v", got)
	}
	// Destination site too small for the gang: no orders.
	if got := p.Decide(active, inactive[:2]); len(got) != 0 {
		t.Fatalf("undersized site accepted: %+v", got)
	}
}

func TestDaemonSwapsLoadedNode(t *testing.T) {
	r := newRig()
	rt := NewRuntime(r.world, 3, 1e6)
	StartDaemon(r.sim, rt, GreedyPolicy{Gain: 1.5}, 5, NodeSpeed(r.nodes))
	// Load one UTK node at t=8; daemon should move its rank to a UIUC node.
	r.sim.Schedule(8, func() { r.grid.Node("utk2").CPU.SetExternalLoad(4) })
	rt.Run(r.sim, iterBody(3e8), 40)
	r.sim.RunUntil(600)
	if rt.Swaps() == 0 {
		t.Fatal("daemon never swapped the loaded node")
	}
	for _, phys := range rt.ActivePhys() {
		if r.nodes[phys].Name() == "utk2" {
			t.Fatal("loaded node still active after daemon swaps")
		}
	}
}
