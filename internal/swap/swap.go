// Package swap implements the §4.2 process-swapping rescheduler: the MPI
// application is launched over more machines than it computes on; the
// active set does the work while the inactive set idles, and a swapping
// rescheduler exchanges slow active processes for faster inactive ones at
// iteration boundaries. Communication is hijacked through a remappable
// communicator, so the application only ever sees its active virtual ranks.
// The processor pool is fixed at launch and the data distribution never
// changes — cheap but less flexible than stop/restart, exactly the paper's
// trade-off.
package swap

import (
	"fmt"

	"grads/internal/mpi"
	"grads/internal/simcore"
	"grads/internal/telemetry"
)

// Order requests that virtual rank VRank move to physical process ToPhys.
type Order struct {
	VRank  int
	ToPhys int
}

// IterMark is one progress observation: virtual rank 0 completed Iter at
// Time (the series Figure 4 plots).
type IterMark struct {
	Time float64
	Iter int
}

// activation is the state-carrying handoff message to a newly active
// process.
type activation struct {
	vrank    int
	nextIter int
}

// done tells an inactive process the application has finished.
type doneMsg struct{}

// Runtime coordinates the active/inactive sets of one swappable
// application.
type Runtime struct {
	sim   *simcore.Sim
	world *mpi.World
	comm  *mpi.Comm

	stateBytes float64
	active     map[int]bool // phys rank -> active?
	mailbox    []*simcore.Chan

	pending  []Order
	inFlight int
	swapDone *simcore.Signal

	progress  []IterMark
	swaps     int
	swapTimes []float64
}

// NewRuntime creates the swap runtime: the first nActive physical ranks
// form the initial active set; the rest are inactive. stateBytes is the
// per-process application state a swap must move.
func NewRuntime(world *mpi.World, nActive int, stateBytes float64) *Runtime {
	if nActive <= 0 || nActive > world.Size() {
		panic(fmt.Sprintf("swap: bad active count %d of %d", nActive, world.Size()))
	}
	phys := make([]int, nActive)
	for i := range phys {
		phys[i] = i
	}
	rt := &Runtime{
		world:      world,
		comm:       mpi.NewComm(world, phys),
		stateBytes: stateBytes,
		active:     make(map[int]bool, world.Size()),
	}
	for i := 0; i < world.Size(); i++ {
		rt.active[i] = i < nActive
	}
	return rt
}

// bind attaches the runtime to the world's simulation (called from Run).
func (rt *Runtime) bind(sim *simcore.Sim) {
	if rt.swapDone != nil {
		return
	}
	rt.sim = sim
	rt.swapDone = simcore.NewSignal(sim)
	rt.mailbox = make([]*simcore.Chan, rt.world.Size())
	for i := range rt.mailbox {
		rt.mailbox[i] = simcore.NewChan(sim, 0)
	}
}

// ActiveComm returns the communicator over the active set.
func (rt *Runtime) ActiveComm() *mpi.Comm { return rt.comm }

// ActivePhys returns the physical ranks of the current active set in
// virtual rank order.
func (rt *Runtime) ActivePhys() []int { return rt.comm.Ranks() }

// InactivePhys returns the currently inactive physical ranks in ascending
// order.
func (rt *Runtime) InactivePhys() []int {
	var out []int
	for i := 0; i < rt.world.Size(); i++ {
		if !rt.active[i] {
			out = append(out, i)
		}
	}
	return out
}

// Swaps returns how many swaps have completed.
func (rt *Runtime) Swaps() int { return rt.swaps }

// SwapTimes returns the virtual times at which swaps completed.
func (rt *Runtime) SwapTimes() []float64 { return append([]float64(nil), rt.swapTimes...) }

// Progress returns the iteration trace of virtual rank 0.
func (rt *Runtime) Progress() []IterMark { return append([]IterMark(nil), rt.progress...) }

// RequestSwap schedules a swap to take effect at the next iteration
// boundary. It validates that vrank is active and toPhys inactive and not
// already targeted.
func (rt *Runtime) RequestSwap(vrank, toPhys int) error {
	if vrank < 0 || vrank >= rt.comm.Size() {
		return fmt.Errorf("swap: virtual rank %d out of range", vrank)
	}
	if rt.active[toPhys] {
		return fmt.Errorf("swap: phys %d is already active", toPhys)
	}
	for _, o := range rt.pending {
		if o.VRank == vrank || o.ToPhys == toPhys {
			return fmt.Errorf("swap: conflicting pending order %+v", o)
		}
	}
	rt.pending = append(rt.pending, Order{VRank: vrank, ToPhys: toPhys})
	if rt.sim != nil {
		if tel := rt.sim.Telemetry(); tel != nil {
			tel.Counter("swap", "orders").Inc()
			tel.Emit(telemetry.Event{
				Type: telemetry.EvSwapOrder, Comp: "swap",
				Args: []telemetry.Arg{telemetry.I("vrank", vrank), telemetry.I("to_phys", toPhys)},
			})
		}
	}
	return nil
}

// Body is one application iteration executed by each active process.
type Body func(ctx *mpi.Ctx, comm *mpi.Comm, vrank, iter int) error

// Run starts every world process and drives the iterate/swap loop until
// totalIters iterations complete. Inactive processes park until activated
// or until completion.
func (rt *Runtime) Run(sim *simcore.Sim, body Body, totalIters int) {
	rt.bind(sim)
	rt.world.Start(func(ctx *mpi.Ctx) {
		iter := 0
		for {
			vrank := rt.comm.Rank(ctx)
			if vrank < 0 {
				// Inactive: wait to be activated or dismissed.
				v, err := rt.mailbox[ctx.PhysRank()].Get(ctx.Proc())
				if err != nil {
					return
				}
				switch m := v.(type) {
				case doneMsg:
					return
				case activation:
					iter = m.nextIter
					continue // now active: loop re-reads vrank
				}
				continue
			}
			if iter >= totalIters {
				rt.finish(ctx, vrank)
				return
			}
			if err := body(ctx, rt.comm, vrank, iter); err != nil {
				rt.world.Fail(err)
				return
			}
			iter++
			if vrank == 0 {
				rt.progress = append(rt.progress, IterMark{Time: ctx.Now(), Iter: iter})
			}
			deactivated, err := rt.boundary(ctx, vrank, iter)
			if err != nil {
				rt.world.Fail(err)
				return
			}
			if deactivated {
				iter = 0 // parked; real iter arrives with the activation
			}
		}
	})
}

// finish dismisses the inactive pool (virtual rank 0 only) so every process
// terminates.
func (rt *Runtime) finish(ctx *mpi.Ctx, vrank int) {
	if vrank != 0 {
		return
	}
	for _, phys := range rt.InactivePhys() {
		rt.mailbox[phys].TryPut(doneMsg{})
	}
}

// boundary runs the swap protocol at an iteration boundary. It returns
// deactivated=true when the calling process handed its role away.
func (rt *Runtime) boundary(ctx *mpi.Ctx, vrank, nextIter int) (deactivated bool, err error) {
	if err := rt.comm.Barrier(ctx); err != nil {
		return false, err
	}
	var orders []Order
	if vrank == 0 {
		orders = rt.pending
		rt.pending = nil
		rt.inFlight = len(orders)
	}
	payload, err := rt.comm.Bcast(ctx, 0, 64, orders)
	if err != nil {
		return false, err
	}
	if payload != nil {
		orders = payload.([]Order)
	}
	if len(orders) == 0 {
		return false, nil
	}
	var mine *Order
	for i := range orders {
		if orders[i].VRank == vrank {
			mine = &orders[i]
			break
		}
	}
	if mine == nil {
		// Not swapped: wait for all swaps to complete before iterating on.
		for rt.inFlight > 0 {
			if err := rt.swapDone.Wait(ctx.Proc()); err != nil {
				return false, err
			}
		}
		return false, nil
	}
	// This process is being swapped out: remap first (the mapping is safe
	// to change because every active process is parked in this protocol),
	// then ship state to the replacement and hand over the role.
	from := ctx.PhysRank()
	rt.comm.Remap(vrank, mine.ToPhys)
	rt.active[from] = false
	rt.active[mine.ToPhys] = true
	grid := ctx.World().Grid()
	if rt.stateBytes > 0 {
		route := grid.Route(ctx.Node(), rt.world.Node(mine.ToPhys))
		if _, err := grid.Net.Transfer(ctx.Proc(), route, rt.stateBytes); err != nil {
			return false, err
		}
	}
	rt.mailbox[mine.ToPhys].TryPut(activation{vrank: vrank, nextIter: nextIter})
	rt.swaps++
	rt.swapTimes = append(rt.swapTimes, ctx.Now())
	if tel := rt.sim.Telemetry(); tel != nil {
		tel.Counter("swap", "swaps").Inc()
		tel.Emit(telemetry.Event{
			Type: telemetry.EvSwapDone, Comp: "swap",
			Args: []telemetry.Arg{
				telemetry.I("vrank", vrank),
				telemetry.I("from_phys", from),
				telemetry.I("to_phys", mine.ToPhys),
				telemetry.F("state_bytes", rt.stateBytes),
			},
		})
	}
	rt.inFlight--
	if rt.inFlight == 0 {
		rt.swapDone.Broadcast()
	}
	return true, nil
}
