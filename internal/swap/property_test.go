package swap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"grads/internal/mpi"
	"grads/internal/simcore"
	"grads/internal/topology"
)

// Property: the active/inactive partition is preserved under any sequence
// of swaps — the active set always has exactly nActive distinct members,
// every rank is either active or inactive, and the application completes
// every iteration.
func TestQuickSwapPartitionInvariant(t *testing.T) {
	f := func(seed int64, swapsRaw [4]uint8) bool {
		sim := simcore.New(7)
		g := topology.MicroGridTestbed(sim)
		var nodes []*topology.Node
		nodes = append(nodes, g.Site("UTK").Nodes()...)
		nodes = append(nodes, g.Site("UIUC").Nodes()...)
		w := mpi.NewWorld(sim, g, "prop", nodes)
		const nActive = 3
		rt := NewRuntime(w, nActive, 1e5)
		rng := rand.New(rand.NewSource(seed))

		// Schedule a few random (possibly rejected) swap requests.
		for i, raw := range swapsRaw {
			at := float64(i+1) * (2 + rng.Float64()*5)
			vrank := int(raw) % nActive
			sim.At(at, func() {
				inact := rt.InactivePhys()
				if len(inact) == 0 {
					return
				}
				_ = rt.RequestSwap(vrank, inact[int(raw)%len(inact)])
			})
		}

		const iters = 25
		rt.Run(sim, func(ctx *mpi.Ctx, comm *mpi.Comm, vrank, iter int) error {
			if err := ctx.Compute(2e8); err != nil {
				return err
			}
			_, err := comm.Allreduce(ctx, 512, nil, nil)
			return err
		}, iters)
		sim.Run()

		if w.Err() != nil || w.Running() != 0 {
			return false
		}
		// Partition invariant.
		active := rt.ActivePhys()
		if len(active) != nActive {
			return false
		}
		seen := map[int]bool{}
		for _, p := range active {
			if p < 0 || p >= w.Size() || seen[p] {
				return false
			}
			seen[p] = true
		}
		for _, p := range rt.InactivePhys() {
			if seen[p] {
				return false // both active and inactive
			}
			seen[p] = true
		}
		if len(seen) != w.Size() {
			return false
		}
		// Progress invariant: all iterations completed, monotonically.
		prog := rt.Progress()
		if len(prog) != iters {
			return false
		}
		for i, m := range prog {
			if m.Iter != i+1 {
				return false
			}
			if i > 0 && m.Time < prog[i-1].Time {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(85))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
