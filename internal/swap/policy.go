package swap

import (
	"sort"

	"grads/internal/simcore"
	"grads/internal/topology"
)

// Candidate describes one machine to a swap policy: its physical rank, the
// virtual rank it currently serves (-1 for inactive machines), and its
// forecast effective speed in flop/s.
type Candidate struct {
	Phys  int
	VRank int
	Speed float64
}

// Policy decides which swaps to perform given the active and inactive
// candidate sets. Implementations must not mutate the slices.
type Policy interface {
	Name() string
	Decide(active, inactive []Candidate) []Order
}

// GreedyPolicy repeatedly swaps the slowest active machine with the fastest
// inactive one while the inactive machine is at least Gain times faster
// (Gain > 1; the margin keeps marginal swaps from thrashing).
type GreedyPolicy struct {
	Gain float64
}

// Name implements Policy.
func (GreedyPolicy) Name() string { return "greedy" }

// Decide implements Policy.
func (p GreedyPolicy) Decide(active, inactive []Candidate) []Order {
	gain := p.Gain
	if gain <= 1 {
		gain = 1.2
	}
	act := append([]Candidate(nil), active...)
	inact := append([]Candidate(nil), inactive...)
	sort.Slice(act, func(i, j int) bool { return act[i].Speed < act[j].Speed })
	sort.Slice(inact, func(i, j int) bool { return inact[i].Speed > inact[j].Speed })
	var orders []Order
	for i := 0; i < len(act) && i < len(inact); i++ {
		if inact[i].Speed >= act[i].Speed*gain {
			orders = append(orders, Order{VRank: act[i].VRank, ToPhys: inact[i].Phys})
		} else {
			break
		}
	}
	return orders
}

// ThresholdPolicy swaps any active machine slower than Fraction of the
// median active speed with the fastest available inactive machine that
// beats it.
type ThresholdPolicy struct {
	Fraction float64
}

// Name implements Policy.
func (ThresholdPolicy) Name() string { return "threshold" }

// Decide implements Policy.
func (p ThresholdPolicy) Decide(active, inactive []Candidate) []Order {
	frac := p.Fraction
	if frac <= 0 || frac >= 1 {
		frac = 0.7
	}
	if len(active) == 0 || len(inactive) == 0 {
		return nil
	}
	speeds := make([]float64, len(active))
	for i, a := range active {
		speeds[i] = a.Speed
	}
	sort.Float64s(speeds)
	median := speeds[len(speeds)/2]

	inact := append([]Candidate(nil), inactive...)
	sort.Slice(inact, func(i, j int) bool { return inact[i].Speed > inact[j].Speed })
	used := 0
	var orders []Order
	for _, a := range active {
		if used >= len(inact) {
			break
		}
		if a.Speed < frac*median && inact[used].Speed > a.Speed {
			orders = append(orders, Order{VRank: a.VRank, ToPhys: inact[used].Phys})
			used++
		}
	}
	return orders
}

// GangPolicy treats the active set as a gang: a synchronized iterative
// application is paced by its slowest member, so when any active machine is
// degraded it considers moving the WHOLE active set to the site whose
// inactive machines offer the best lock-step rate. This reproduces the
// paper's §4.2.2 demonstration, where load on one UTK node caused all three
// working processes to migrate to the UIUC cluster.
type GangPolicy struct {
	// Gain is the required lock-step-rate improvement factor (> 1).
	Gain float64
	// SiteOf maps a physical rank to its site name.
	SiteOf func(phys int) string
}

// Name implements Policy.
func (GangPolicy) Name() string { return "gang" }

// Decide implements Policy.
func (p GangPolicy) Decide(active, inactive []Candidate) []Order {
	gain := p.Gain
	if gain <= 1 {
		gain = 1.2
	}
	if len(active) == 0 || p.SiteOf == nil {
		return nil
	}
	// Current lock-step rate: |active| x slowest active speed.
	slowest := active[0].Speed
	for _, a := range active {
		if a.Speed < slowest {
			slowest = a.Speed
		}
	}
	current := float64(len(active)) * slowest

	// Group inactive machines by site and pick the best destination able
	// to host the whole gang.
	bySite := map[string][]Candidate{}
	for _, c := range inactive {
		s := p.SiteOf(c.Phys)
		bySite[s] = append(bySite[s], c)
	}
	sites := make([]string, 0, len(bySite))
	for s := range bySite {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	var best []Candidate
	bestRate := current * gain
	for _, s := range sites {
		cands := bySite[s]
		if len(cands) < len(active) {
			continue
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].Speed > cands[j].Speed })
		sel := cands[:len(active)]
		rate := float64(len(sel)) * sel[len(sel)-1].Speed
		if rate >= bestRate {
			bestRate, best = rate, sel
		}
	}
	if best == nil {
		return nil
	}
	orders := make([]Order, len(active))
	for i, a := range active {
		orders[i] = Order{VRank: a.VRank, ToPhys: best[i].Phys}
	}
	return orders
}

// NonePolicy never swaps (the baseline).
type NonePolicy struct{}

// Name implements Policy.
func (NonePolicy) Name() string { return "none" }

// Decide implements Policy.
func (NonePolicy) Decide(_, _ []Candidate) []Order { return nil }

// SpeedFunc reports a physical rank's forecast effective speed for the
// application. active distinguishes machines already running an application
// process (whose own task must not count against them) from idle candidates
// (which would add a task).
type SpeedFunc func(phys int, active bool) float64

// NodeSpeed builds a SpeedFunc from the world placement using instantaneous
// CPU state (what the §4.2 sensors measure): the application's share on an
// active machine is 1/(tasks+load) — its task is already among tasks — and
// on an idle machine 1/(tasks+load+1).
func NodeSpeed(nodes []*topology.Node) SpeedFunc {
	return func(phys int, active bool) float64 {
		n := nodes[phys]
		denom := float64(n.CPU.Running()) + n.CPU.ExternalLoad()
		if !active {
			denom++
		} else if denom < 1 {
			denom = 1
		}
		return n.Spec.Flops() / denom
	}
}

// Daemon is the swapping rescheduler: it periodically gathers machine
// performance, runs the policy, and places swap orders with the runtime.
type Daemon struct {
	sim    *simcore.Sim
	rt     *Runtime
	policy Policy
	period float64
	speed  SpeedFunc

	proc    *simcore.Proc
	stopped bool
	decided int
}

// StartDaemon spawns the swapping rescheduler checking every period
// seconds.
func StartDaemon(sim *simcore.Sim, rt *Runtime, policy Policy, period float64, speed SpeedFunc) *Daemon {
	if period <= 0 {
		period = 10
	}
	d := &Daemon{sim: sim, rt: rt, policy: policy, period: period, speed: speed}
	d.proc = sim.Spawn("swap-rescheduler", d.run)
	return d
}

// Stop terminates the daemon.
func (d *Daemon) Stop() {
	d.stopped = true
	d.proc.Kill()
}

// OrdersPlaced returns how many swap orders the daemon has issued.
func (d *Daemon) OrdersPlaced() int { return d.decided }

func (d *Daemon) run(p *simcore.Proc) {
	for !d.stopped {
		if err := p.Sleep(d.period); err != nil {
			return
		}
		d.tick()
	}
}

func (d *Daemon) tick() {
	var active, inactive []Candidate
	for v, phys := range d.rt.ActivePhys() {
		active = append(active, Candidate{Phys: phys, VRank: v, Speed: d.speed(phys, true)})
	}
	for _, phys := range d.rt.InactivePhys() {
		inactive = append(inactive, Candidate{Phys: phys, VRank: -1, Speed: d.speed(phys, false)})
	}
	for _, o := range d.policy.Decide(active, inactive) {
		if err := d.rt.RequestSwap(o.VRank, o.ToPhys); err == nil {
			d.decided++
		}
	}
}
