package topology

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"grads/internal/simcore"
)

// ParseDML builds a Grid from a textual description in a small declarative
// language modeled after the MicroGrid's Domain Modeling Language usage in
// the paper ("described for MicroGrid in standard DML and a simple resource
// description for the processor nodes").
//
// Grammar (one declaration per line, '#' starts a comment):
//
//	site <name> bw=<bandwidth> lat=<latency>
//	node <name> site=<site> [arch=ia32|ia64] [mhz=<f>] [fpc=<f>] [mem=<MB>]
//	             [l1=<KB>] [l2=<KB>] [line=<bytes>]
//	cluster <prefix> count=<n> site=<site> [node attrs...]
//	wan <siteA> <siteB> bw=<bandwidth> lat=<latency>
//
// Bandwidths accept the suffixes KB, MB, GB (bytes/s, SI) and Kb, Mb, Gb
// (bits/s); latencies accept us, ms, s. Bare numbers are bytes/s and
// seconds.
func ParseDML(sim *simcore.Sim, text string) (*Grid, error) {
	g := NewGrid(sim)
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := parseDecl(g, fields); err != nil {
			return nil, fmt.Errorf("dml: line %d: %w", lineNo, err)
		}
	}
	return g, nil
}

func parseDecl(g *Grid, fields []string) error {
	switch fields[0] {
	case "site":
		if len(fields) < 2 {
			return fmt.Errorf("site needs a name")
		}
		attrs, err := parseAttrs(fields[2:])
		if err != nil {
			return err
		}
		bw, err := requireBandwidth(attrs, "bw")
		if err != nil {
			return err
		}
		lat, err := requireLatency(attrs, "lat")
		if err != nil {
			return err
		}
		g.AddSite(fields[1], bw, lat)
		return nil

	case "node":
		if len(fields) < 2 {
			return fmt.Errorf("node needs a name")
		}
		attrs, err := parseAttrs(fields[2:])
		if err != nil {
			return err
		}
		sp, err := nodeSpecFromAttrs(fields[1], attrs)
		if err != nil {
			return err
		}
		g.AddNode(sp)
		return nil

	case "cluster":
		if len(fields) < 2 {
			return fmt.Errorf("cluster needs a name prefix")
		}
		attrs, err := parseAttrs(fields[2:])
		if err != nil {
			return err
		}
		countStr, ok := attrs["count"]
		if !ok {
			return fmt.Errorf("cluster needs count=")
		}
		count, err := strconv.Atoi(countStr)
		if err != nil || count <= 0 {
			return fmt.Errorf("bad cluster count %q", countStr)
		}
		delete(attrs, "count")
		for i := 1; i <= count; i++ {
			sp, err := nodeSpecFromAttrs(fmt.Sprintf("%s%d", fields[1], i), attrs)
			if err != nil {
				return err
			}
			g.AddNode(sp)
		}
		return nil

	case "wan":
		if len(fields) < 3 {
			return fmt.Errorf("wan needs two site names")
		}
		attrs, err := parseAttrs(fields[3:])
		if err != nil {
			return err
		}
		bw, err := requireBandwidth(attrs, "bw")
		if err != nil {
			return err
		}
		lat, err := requireLatency(attrs, "lat")
		if err != nil {
			return err
		}
		g.Connect(fields[1], fields[2], bw, lat)
		return nil
	}
	return fmt.Errorf("unknown declaration %q", fields[0])
}

func nodeSpecFromAttrs(name string, attrs map[string]string) (NodeSpec, error) {
	sp := NodeSpec{
		Name:          name,
		Arch:          ArchIA32,
		MHz:           500,
		FlopsPerCycle: 0.5,
		MemMB:         512,
		Cache:         CacheConfig{L1KB: 16, L2KB: 512, LineBytes: 32},
	}
	for k, v := range attrs {
		var err error
		switch k {
		case "site":
			sp.Site = v
		case "arch":
			sp.Arch = Arch(v)
		case "mhz":
			sp.MHz, err = strconv.ParseFloat(v, 64)
		case "fpc":
			sp.FlopsPerCycle, err = strconv.ParseFloat(v, 64)
		case "mem":
			sp.MemMB, err = strconv.ParseFloat(v, 64)
		case "l1":
			sp.Cache.L1KB, err = strconv.Atoi(v)
		case "l2":
			sp.Cache.L2KB, err = strconv.Atoi(v)
		case "line":
			sp.Cache.LineBytes, err = strconv.Atoi(v)
		default:
			return sp, fmt.Errorf("unknown node attribute %q", k)
		}
		if err != nil {
			return sp, fmt.Errorf("bad value %q for %s: %v", v, k, err)
		}
	}
	if sp.Site == "" {
		return sp, fmt.Errorf("node %q needs site=", name)
	}
	return sp, nil
}

func parseAttrs(fields []string) (map[string]string, error) {
	attrs := make(map[string]string, len(fields))
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("expected key=value, got %q", f)
		}
		attrs[k] = v
	}
	return attrs, nil
}

func requireBandwidth(attrs map[string]string, key string) (float64, error) {
	v, ok := attrs[key]
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	return ParseBandwidth(v)
}

func requireLatency(attrs map[string]string, key string) (float64, error) {
	v, ok := attrs[key]
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	return ParseLatency(v)
}

// ParseBandwidth converts "160MB", "100Mb", "1.28Gb" or a bare number into
// bytes per second (SI prefixes; lowercase b = bits).
func ParseBandwidth(s string) (float64, error) {
	mult := 1.0
	num := s
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, num = 1e9, s[:len(s)-2]
	case strings.HasSuffix(s, "MB"):
		mult, num = 1e6, s[:len(s)-2]
	case strings.HasSuffix(s, "KB"):
		mult, num = 1e3, s[:len(s)-2]
	case strings.HasSuffix(s, "Gb"):
		mult, num = 1e9/8, s[:len(s)-2]
	case strings.HasSuffix(s, "Mb"):
		mult, num = 1e6/8, s[:len(s)-2]
	case strings.HasSuffix(s, "Kb"):
		mult, num = 1e3/8, s[:len(s)-2]
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f <= 0 {
		return 0, fmt.Errorf("bad bandwidth %q", s)
	}
	return f * mult, nil
}

// ParseLatency converts "30ms", "100us", "1.5s" or a bare number (seconds)
// into seconds.
func ParseLatency(s string) (float64, error) {
	mult := 1.0
	num := s
	switch {
	case strings.HasSuffix(s, "us"):
		mult, num = 1e-6, s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		mult, num = 1e-3, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		num = s[:len(s)-1]
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad latency %q", s)
	}
	return f * mult, nil
}
