package topology

import (
	"math"
	"strings"
	"testing"

	"grads/internal/simcore"
)

func TestGridConstruction(t *testing.T) {
	s := simcore.New(1)
	g := NewGrid(s)
	g.AddSite("A", 1e6, 1e-4)
	g.AddSite("B", 2e6, 1e-4)
	g.Connect("A", "B", 1e5, 0.02)
	n1 := g.AddNode(NodeSpec{Name: "a1", Site: "A", Arch: ArchIA32, MHz: 500, FlopsPerCycle: 0.5})
	n2 := g.AddNode(NodeSpec{Name: "a2", Site: "A", Arch: ArchIA32, MHz: 500, FlopsPerCycle: 0.5})
	n3 := g.AddNode(NodeSpec{Name: "b1", Site: "B", Arch: ArchIA64, MHz: 900, FlopsPerCycle: 2})

	if n1.Spec.Flops() != 250e6 {
		t.Fatalf("Flops = %v, want 250e6", n1.Spec.Flops())
	}
	if n3.CPU.Speed() != 1.8e9 {
		t.Fatalf("CPU speed = %v, want 1.8e9", n3.CPU.Speed())
	}
	if got := len(g.Nodes()); got != 3 {
		t.Fatalf("Nodes() len = %d", got)
	}
	if g.Node("a1") != n1 || g.Site("B").Nodes()[0] != n3 {
		t.Fatal("lookup mismatch")
	}

	if r := g.Route(n1, n1); r != nil {
		t.Fatalf("self route = %v, want nil", r)
	}
	if r := g.Route(n1, n2); len(r) != 1 || r[0] != g.Site("A").LAN {
		t.Fatalf("intra-site route = %v", r)
	}
	r := g.Route(n1, n3)
	if len(r) != 3 || r[1] != g.WAN("A", "B") {
		t.Fatalf("inter-site route = %v", r)
	}
	// WAN lookup is symmetric.
	if g.WAN("B", "A") != g.WAN("A", "B") {
		t.Fatal("WAN lookup not symmetric")
	}
}

func TestDuplicatePanics(t *testing.T) {
	s := simcore.New(1)
	g := NewGrid(s)
	g.AddSite("A", 1e6, 0)
	assertPanics(t, "dup site", func() { g.AddSite("A", 1e6, 0) })
	g.AddNode(NodeSpec{Name: "n", Site: "A"})
	assertPanics(t, "dup node", func() { g.AddNode(NodeSpec{Name: "n", Site: "A"}) })
	assertPanics(t, "bad site", func() { g.AddNode(NodeSpec{Name: "m", Site: "ZZZ"}) })
	g.AddSite("B", 1e6, 0)
	g.Connect("A", "B", 1e5, 0.01)
	assertPanics(t, "dup wan", func() { g.Connect("B", "A", 1e5, 0.01) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestMacroGridShape(t *testing.T) {
	g := MacroGrid(simcore.New(1))
	if got := len(g.Nodes()); got != 10+24+24+24 {
		t.Fatalf("MacroGrid has %d nodes, want 82", got)
	}
	// Paper: one UCSD cluster (10), two UTK clusters (24), two UIUC (24), UH (24).
	counts := map[string]int{}
	ia64 := 0
	for _, n := range g.Nodes() {
		counts[n.Site().Name]++
		if n.Spec.Arch == ArchIA64 {
			ia64++
		}
	}
	want := map[string]int{"UCSD": 10, "UTK": 24, "UIUC": 24, "UH": 24}
	for s, w := range want {
		if counts[s] != w {
			t.Fatalf("site %s has %d nodes, want %d", s, counts[s], w)
		}
	}
	if ia64 == 0 {
		t.Fatal("MacroGrid has no IA-64 nodes; §3.3 heterogeneity needs them")
	}
	// All sites pairwise connected.
	sites := []string{"UCSD", "UTK", "UIUC", "UH"}
	for i := range sites {
		for j := i + 1; j < len(sites); j++ {
			if g.WAN(sites[i], sites[j]) == nil {
				t.Fatalf("missing WAN %s-%s", sites[i], sites[j])
			}
		}
	}
}

func TestQRTestbedMatchesPaper(t *testing.T) {
	g := QRTestbed(simcore.New(1))
	utk := g.Site("UTK").Nodes()
	uiuc := g.Site("UIUC").Nodes()
	if len(utk) != 4 || len(uiuc) != 8 {
		t.Fatalf("QR testbed: %d UTK + %d UIUC, want 4 + 8", len(utk), len(uiuc))
	}
	if utk[0].Spec.MHz != 933 || uiuc[0].Spec.MHz != 450 {
		t.Fatalf("clock rates %v/%v, want 933/450", utk[0].Spec.MHz, uiuc[0].Spec.MHz)
	}
	if g.Site("UTK").LAN.Capacity() != Ethernet100 {
		t.Fatalf("UTK LAN = %v, want 100Mb Ethernet", g.Site("UTK").LAN.Capacity())
	}
	if g.Site("UIUC").LAN.Capacity() != Myrinet {
		t.Fatalf("UIUC LAN = %v, want Myrinet", g.Site("UIUC").LAN.Capacity())
	}
	// Unloaded UTK cluster is faster in aggregate than UIUC (the reason the
	// initial schedule picks UTK).
	if 4*utk[0].Spec.Flops() <= 8*uiuc[0].Spec.Flops() {
		t.Fatal("UTK should out-aggregate UIUC when unloaded")
	}
}

func TestMicroGridTestbedMatchesPaper(t *testing.T) {
	g := MicroGridTestbed(simcore.New(1))
	if len(g.Site("UTK").Nodes()) != 3 || len(g.Site("UIUC").Nodes()) != 3 || len(g.Site("UCSD").Nodes()) != 1 {
		t.Fatal("MicroGrid node counts wrong")
	}
	if lat := g.WAN("UCSD", "UTK").Latency(); lat != 0.030 {
		t.Fatalf("UCSD-UTK latency %v, want 30ms", lat)
	}
	if lat := g.WAN("UTK", "UIUC").Latency(); lat != 0.011 {
		t.Fatalf("UTK-UIUC latency %v, want 11ms", lat)
	}
	if g.Site("UTK").Nodes()[0].Spec.MHz != 550 {
		t.Fatal("UTK MicroGrid nodes should be 550 MHz PII")
	}
}

func TestTransferTimeEstimate(t *testing.T) {
	s := simcore.New(1)
	g := NewGrid(s)
	g.AddSite("A", 1e6, 0.001)
	g.AddSite("B", 1e6, 0.001)
	g.Connect("A", "B", 1e5, 0.01)
	a := g.AddNode(NodeSpec{Name: "a", Site: "A"})
	b := g.AddNode(NodeSpec{Name: "b", Site: "B"})
	est := g.TransferTimeEstimate(a, b, 1e5)
	// 0.001+0.01+0.001 latency + 1e5/1e5 bottleneck = 1.012
	if math.Abs(est-1.012) > 1e-9 {
		t.Fatalf("estimate = %v, want 1.012", est)
	}
}

func TestParseDML(t *testing.T) {
	text := `
# two-site grid
site UTK bw=100Mb lat=100us
site UIUC bw=1.28Gb lat=100us
cluster utk count=4 site=UTK arch=ia32 mhz=933 fpc=0.5 mem=1024 l1=16 l2=256 line=32
node special site=UIUC arch=ia64 mhz=900 fpc=2.0
wan UTK UIUC bw=10Mb lat=11ms
`
	g, err := ParseDML(simcore.New(1), text)
	if err != nil {
		t.Fatalf("ParseDML: %v", err)
	}
	if len(g.Nodes()) != 5 {
		t.Fatalf("parsed %d nodes, want 5", len(g.Nodes()))
	}
	if g.Site("UTK").LAN.Capacity() != 100e6/8 {
		t.Fatalf("UTK LAN capacity = %v", g.Site("UTK").LAN.Capacity())
	}
	n := g.Node("special")
	if n == nil || n.Spec.Arch != ArchIA64 || n.Spec.Flops() != 1.8e9 {
		t.Fatalf("special node parsed wrong: %+v", n)
	}
	if g.Node("utk3").Spec.Cache.L2KB != 256 {
		t.Fatal("cluster cache attrs not applied")
	}
	w := g.WAN("UTK", "UIUC")
	if w == nil || w.Latency() != 0.011 || w.Capacity() != 10e6/8 {
		t.Fatalf("WAN parsed wrong: %+v", w)
	}
}

func TestParseDMLErrors(t *testing.T) {
	bad := []string{
		"frobnicate x",
		"site OnlyName",
		"site X bw=abc lat=1ms",
		"node n1",
		"node n1 arch=ia32", // missing site
		"cluster c site=X",  // missing count
		"wan A",
		"node n1 site=X unknown=1",
	}
	for _, text := range bad {
		if _, err := ParseDML(simcore.New(1), "site X bw=1MB lat=0\n"+text); err == nil {
			t.Fatalf("ParseDML accepted %q", text)
		}
	}
}

func TestParseBandwidthUnits(t *testing.T) {
	cases := map[string]float64{
		"125":    125,
		"1KB":    1e3,
		"12.5MB": 12.5e6,
		"1GB":    1e9,
		"8Kb":    1e3,
		"100Mb":  12.5e6,
		"1.28Gb": 160e6,
	}
	for in, want := range cases {
		got, err := ParseBandwidth(in)
		if err != nil || math.Abs(got-want) > 1e-6 {
			t.Fatalf("ParseBandwidth(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "-5MB", "xMB", "0"} {
		if _, err := ParseBandwidth(bad); err == nil {
			t.Fatalf("ParseBandwidth accepted %q", bad)
		}
	}
}

func TestParseLatencyUnits(t *testing.T) {
	cases := map[string]float64{"0.5": 0.5, "30ms": 0.030, "100us": 100e-6, "2s": 2}
	for in, want := range cases {
		got, err := ParseLatency(in)
		if err != nil || math.Abs(got-want) > 1e-12 {
			t.Fatalf("ParseLatency(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLatency("fast"); err == nil {
		t.Fatal("ParseLatency accepted garbage")
	}
}

func TestRoutePanicsWithoutWAN(t *testing.T) {
	s := simcore.New(1)
	g := NewGrid(s)
	g.AddSite("A", 1e6, 0)
	g.AddSite("B", 1e6, 0)
	a := g.AddNode(NodeSpec{Name: "a", Site: "A"})
	b := g.AddNode(NodeSpec{Name: "b", Site: "B"})
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "no WAN link") {
			t.Fatalf("expected no-WAN panic, got %v", r)
		}
	}()
	g.Route(a, b)
}
