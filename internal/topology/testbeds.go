package topology

import (
	"fmt"

	"grads/internal/simcore"
)

// Bandwidth and latency constants for the testbeds, in bytes/s and seconds.
const (
	Ethernet100 = 12.5e6 // 100 Mb/s switched Ethernet
	Myrinet     = 160e6  // 1.28 Gbit/s full-duplex Myrinet
	GigE        = 125e6  // Gigabit Ethernet
	Internet10  = 1.25e6 // ~10 Mb/s Internet path (2003-era inter-campus)

	LANLatency = 100e-6 // 100 µs switched-LAN latency
)

// Cache geometries for the processor generations in the testbeds.
var (
	cachePII     = CacheConfig{L1KB: 16, L2KB: 512, LineBytes: 32}
	cachePIII    = CacheConfig{L1KB: 16, L2KB: 256, LineBytes: 32}
	cacheAthlon  = CacheConfig{L1KB: 64, L2KB: 256, LineBytes: 64}
	cacheItanium = CacheConfig{L1KB: 16, L2KB: 256, LineBytes: 64}
)

// addCluster adds count identical nodes named prefix1..prefixN to a site.
func addCluster(g *Grid, site, prefix string, count int, arch Arch, mhz, fpc, memMB float64, cache CacheConfig) {
	for i := 1; i <= count; i++ {
		g.AddNode(NodeSpec{
			Name:          fmt.Sprintf("%s%d", prefix, i),
			Site:          site,
			Arch:          arch,
			MHz:           mhz,
			FlopsPerCycle: fpc,
			MemMB:         memMB,
			Cache:         cache,
		})
	}
}

// MacroGrid builds the full GrADS testbed from §1 of the paper: one cluster
// at UCSD (10 machines), two at UTK (24), two at UIUC (24), one at UH (24).
// Clock rates follow the machines named in the paper where given; the UH
// cluster contributes the IA-64 nodes used by the §3.3 heterogeneity
// demonstration. All sites are pairwise connected by Internet paths.
func MacroGrid(sim *simcore.Sim) *Grid {
	g := NewGrid(sim)

	g.AddSite("UCSD", GigE, LANLatency)
	addCluster(g, "UCSD", "ucsd", 10, ArchIA32, 1700, 0.8, 1024, cacheAthlon)

	g.AddSite("UTK", Ethernet100, LANLatency)
	addCluster(g, "UTK", "utk-a", 16, ArchIA32, 933, 0.5, 512, cachePIII)
	addCluster(g, "UTK", "utk-b", 8, ArchIA32, 550, 0.4, 256, cachePII)

	g.AddSite("UIUC", Myrinet, LANLatency)
	addCluster(g, "UIUC", "uiuc-a", 16, ArchIA32, 450, 0.4, 256, cachePII)
	addCluster(g, "UIUC", "uiuc-b", 8, ArchIA32, 1000, 0.6, 512, cachePIII)

	g.AddSite("UH", GigE, LANLatency)
	addCluster(g, "UH", "uh-ia64-", 12, ArchIA64, 900, 2.0, 2048, cacheItanium)
	addCluster(g, "UH", "uh-ia32-", 12, ArchIA32, 800, 0.5, 512, cachePIII)

	sites := []string{"UCSD", "UTK", "UIUC", "UH"}
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			lat := 0.030
			if (sites[i] == "UTK" && sites[j] == "UIUC") || (sites[i] == "UIUC" && sites[j] == "UTK") {
				lat = 0.011
			}
			g.Connect(sites[i], sites[j], Internet10, lat)
		}
	}
	return g
}

// QRTestbed builds the §4.1.2 stop/restart experiment platform: 4 UTK
// machines (933 MHz dual-processor Pentium III, 100 Mb switched Ethernet)
// and 8 UIUC machines (450 MHz Pentium II, 1.28 Gbit/s Myrinet), the two
// clusters connected via the Internet. The sustained flops-per-cycle
// figures are calibrated to 2003-era ScaLAPACK efficiency on commodity
// clusters (~15% of clock on Ethernet, ~12% on the slower PII core), which
// reproduces the paper's hundreds-to-thousands-of-seconds QR runtimes and
// places the Figure 3 migration crossover near N=8000.
func QRTestbed(sim *simcore.Sim) *Grid {
	g := NewGrid(sim)
	g.AddSite("UTK", Ethernet100, LANLatency)
	addCluster(g, "UTK", "utk", 4, ArchIA32, 933, 0.15, 1024, cachePIII)
	g.AddSite("UIUC", Myrinet, LANLatency)
	addCluster(g, "UIUC", "uiuc", 8, ArchIA32, 450, 0.12, 512, cachePII)
	g.Connect("UTK", "UIUC", Internet10, 0.011)
	return g
}

// SyntheticSite returns the node specs of a synthetic mega-site: count
// nodes named prefix1..prefixN cycling through the testbed's processor
// generations (Athlon, PIII, PII, Itanium), so a large site is heterogeneous
// the way the MacroGrid is. The specs are pure data — no kernel, no Grid —
// which lets the sharded emulator (internal/shardsim) build 10k-node
// topologies without instantiating a CPU model per node.
func SyntheticSite(prefix string, count int) []NodeSpec {
	kinds := []NodeSpec{
		{Arch: ArchIA32, MHz: 1700, FlopsPerCycle: 0.8, MemMB: 1024, Cache: cacheAthlon},
		{Arch: ArchIA32, MHz: 933, FlopsPerCycle: 0.5, MemMB: 512, Cache: cachePIII},
		{Arch: ArchIA32, MHz: 450, FlopsPerCycle: 0.4, MemMB: 256, Cache: cachePII},
		{Arch: ArchIA64, MHz: 900, FlopsPerCycle: 2.0, MemMB: 2048, Cache: cacheItanium},
	}
	specs := make([]NodeSpec, count)
	for i := range specs {
		sp := kinds[i%len(kinds)]
		sp.Name = fmt.Sprintf("%s%d", prefix, i+1)
		sp.Site = prefix
		specs[i] = sp
	}
	return specs
}

// SyntheticGrid instantiates a Grid of sites synthetic mega-sites of
// nodesPerSite nodes each (SyntheticSite specs), all pairwise connected by
// Internet paths. It is the materialized form of the topology the sharded
// scale experiment runs; tests use it to cross-check SyntheticSite against
// the Grid invariants.
func SyntheticGrid(sim *simcore.Sim, sites, nodesPerSite int) *Grid {
	g := NewGrid(sim)
	names := make([]string, sites)
	for i := range names {
		names[i] = fmt.Sprintf("mega%02d", i)
		g.AddSite(names[i], GigE, LANLatency)
		for _, sp := range SyntheticSite(names[i], nodesPerSite) {
			g.AddNode(sp)
		}
	}
	for i := 0; i < sites; i++ {
		for j := i + 1; j < sites; j++ {
			g.Connect(names[i], names[j], Internet10, 0.030)
		}
	}
	return g
}

// MicroGridTestbed builds the §4.2.2 virtual Grid: a 3-node UTK cluster
// (550 MHz Pentium II), a 3-node UIUC cluster (450 MHz Pentium II), both on
// Gigabit Ethernet LANs, and a single 1.7 GHz Athlon node at UCSD. The
// latency between UCSD and the other two sites is 30 ms; between UTK and
// UIUC it is 11 ms.
func MicroGridTestbed(sim *simcore.Sim) *Grid {
	g := NewGrid(sim)
	g.AddSite("UTK", GigE, LANLatency)
	addCluster(g, "UTK", "utk", 3, ArchIA32, 550, 0.4, 256, cachePII)
	g.AddSite("UIUC", GigE, LANLatency)
	addCluster(g, "UIUC", "uiuc", 3, ArchIA32, 450, 0.4, 256, cachePII)
	g.AddSite("UCSD", GigE, LANLatency)
	addCluster(g, "UCSD", "ucsd", 1, ArchIA32, 1700, 0.8, 1024, cacheAthlon)
	g.Connect("UTK", "UIUC", Ethernet100, 0.011)
	g.Connect("UCSD", "UTK", Ethernet100, 0.030)
	g.Connect("UCSD", "UIUC", Ethernet100, 0.030)
	return g
}
