// Package topology models the emulated Grid's resources: nodes with
// architecture, clock rate and cache geometry; sites with LANs; WAN links
// between sites; and the routing between any two nodes. It also provides
// builders for the testbeds used in the paper's experiments (the GrADS
// MacroGrid, the §4.1 QR testbed, and the §4.2 MicroGrid virtual Grid).
package topology

import (
	"fmt"
	"sort"

	"grads/internal/cpusim"
	"grads/internal/netsim"
	"grads/internal/simcore"
)

// Arch identifies a processor architecture. The binder uses it to select
// per-architecture compilation, reproducing the paper's IA-32/IA-64
// heterogeneity support.
type Arch string

// Architectures present in the GrADS testbeds.
const (
	ArchIA32 Arch = "ia32"
	ArchIA64 Arch = "ia64"
)

// CacheConfig describes a node's cache geometry, consumed by the
// memory-reuse-distance performance model.
type CacheConfig struct {
	L1KB      int // L1 data cache size in KiB
	L2KB      int // unified L2 size in KiB
	LineBytes int // cache line size
}

// NodeSpec is the static description of a compute node.
type NodeSpec struct {
	Name          string
	Site          string
	Arch          Arch
	MHz           float64 // core clock
	FlopsPerCycle float64 // sustained double-precision flops per cycle
	MemMB         float64
	Cache         CacheConfig
}

// Flops returns the node's sustained floating-point rate in flop/s.
func (sp NodeSpec) Flops() float64 { return sp.MHz * 1e6 * sp.FlopsPerCycle }

// Node is a live node in an emulated Grid: its spec plus its CPU model.
type Node struct {
	Spec NodeSpec
	CPU  *cpusim.CPU
	site *Site
	down bool
}

// Name returns the node name.
func (n *Node) Name() string { return n.Spec.Name }

// Site returns the site the node belongs to.
func (n *Node) Site() *Site { return n.site }

// Down reports whether the node has failed (fault-tolerance extension:
// mappers, GIS queries and vgrid selection all skip down nodes).
func (n *Node) Down() bool { return n.down }

// SetDown marks the node failed or recovered. Killing the processes that
// were running on it is the responsibility of the layer that owns them
// (mpi.World.FailNode).
func (n *Node) SetDown(down bool) { n.down = down }

// Site is a cluster of nodes sharing a LAN.
type Site struct {
	Name  string
	LAN   *netsim.Link
	nodes []*Node
}

// Nodes returns the site's nodes in creation order.
func (s *Site) Nodes() []*Node { return s.nodes }

// Grid assembles nodes, sites and links over a simulation kernel.
type Grid struct {
	Sim *simcore.Sim
	Net *netsim.Network

	sites map[string]*Site
	nodes map[string]*Node
	wan   map[string]*netsim.Link // key: siteA + "|" + siteB, lexicographic

	watchers    []nodeWatcher
	nextWatchID int
}

// nodeWatcher is one OnNodeStateChange subscription.
type nodeWatcher struct {
	id int
	fn func(*Node, bool)
}

// NewGrid creates an empty Grid bound to sim.
func NewGrid(sim *simcore.Sim) *Grid {
	return &Grid{
		Sim:   sim,
		Net:   netsim.New(sim),
		sites: make(map[string]*Site),
		nodes: make(map[string]*Node),
		wan:   make(map[string]*netsim.Link),
	}
}

// AddSite creates a site with a LAN of the given bandwidth (bytes/s) and
// latency (seconds). It panics on duplicates.
func (g *Grid) AddSite(name string, lanBW, lanLat float64) *Site {
	if _, dup := g.sites[name]; dup {
		panic(fmt.Sprintf("topology: duplicate site %q", name))
	}
	s := &Site{
		Name: name,
		LAN:  g.Net.AddLink("lan:"+name, lanBW, lanLat),
	}
	g.sites[name] = s
	return s
}

// AddNode instantiates a node from its spec, attaching a CPU model.
// The spec's Site must already exist.
func (g *Grid) AddNode(sp NodeSpec) *Node {
	site, ok := g.sites[sp.Site]
	if !ok {
		panic(fmt.Sprintf("topology: node %q references unknown site %q", sp.Name, sp.Site))
	}
	if _, dup := g.nodes[sp.Name]; dup {
		panic(fmt.Sprintf("topology: duplicate node %q", sp.Name))
	}
	if sp.FlopsPerCycle <= 0 {
		sp.FlopsPerCycle = 0.5
	}
	if sp.MHz <= 0 {
		sp.MHz = 500
	}
	n := &Node{
		Spec: sp,
		CPU:  cpusim.New(g.Sim, sp.Name, sp.Flops()),
		site: site,
	}
	g.nodes[sp.Name] = n
	site.nodes = append(site.nodes, n)
	return n
}

// Connect creates a WAN link between two sites with the given bandwidth
// (bytes/s) and one-way latency (seconds). Reconnecting the same pair
// panics.
func (g *Grid) Connect(siteA, siteB string, bw, lat float64) *netsim.Link {
	if _, ok := g.sites[siteA]; !ok {
		panic(fmt.Sprintf("topology: unknown site %q", siteA))
	}
	if _, ok := g.sites[siteB]; !ok {
		panic(fmt.Sprintf("topology: unknown site %q", siteB))
	}
	key := wanKey(siteA, siteB)
	if _, dup := g.wan[key]; dup {
		panic(fmt.Sprintf("topology: duplicate WAN link %s", key))
	}
	l := g.Net.AddLink("wan:"+key, bw, lat)
	g.wan[key] = l
	return l
}

func wanKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Node returns the named node, or nil.
func (g *Grid) Node(name string) *Node { return g.nodes[name] }

// Site returns the named site, or nil.
func (g *Grid) Site(name string) *Site { return g.sites[name] }

// Nodes returns all nodes sorted by name (deterministic iteration order).
func (g *Grid) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// Sites returns all sites sorted by name.
func (g *Grid) Sites() []*Site {
	out := make([]*Site, 0, len(g.sites))
	for _, s := range g.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WAN returns the WAN link between two sites, or nil if they are not
// directly connected.
func (g *Grid) WAN(siteA, siteB string) *netsim.Link { return g.wan[wanKey(siteA, siteB)] }

// Route returns the link sequence a message from a to b traverses:
// nothing within a node, the site LAN within a site, and
// LAN–WAN–LAN across sites. It panics if the sites are not connected.
func (g *Grid) Route(a, b *Node) []*netsim.Link {
	if a == b {
		return nil
	}
	if a.site == b.site {
		return []*netsim.Link{a.site.LAN}
	}
	w := g.WAN(a.site.Name, b.site.Name)
	if w == nil {
		panic(fmt.Sprintf("topology: no WAN link between %q and %q", a.site.Name, b.site.Name))
	}
	return []*netsim.Link{a.site.LAN, w, b.site.LAN}
}

// TransferTimeEstimate predicts moving bytes from a to b under current
// network conditions.
func (g *Grid) TransferTimeEstimate(a, b *Node, bytes float64) float64 {
	return g.Net.TransferTimeEstimate(g.Route(a, b), bytes)
}

// OnNodeStateChange registers a callback invoked (synchronously, in
// registration order) whenever SetNodeDown changes a node's state. The
// returned function removes the subscription. Layers that own processes on
// nodes (mpi.World) subscribe to learn about crashes injected by the chaos
// layer.
func (g *Grid) OnNodeStateChange(fn func(n *Node, down bool)) (unsubscribe func()) {
	g.nextWatchID++
	id := g.nextWatchID
	g.watchers = append(g.watchers, nodeWatcher{id: id, fn: fn})
	return func() {
		for i, w := range g.watchers {
			if w.id == id {
				g.watchers = append(g.watchers[:i], g.watchers[i+1:]...)
				return
			}
		}
	}
}

// SetNodeDown fails or recovers a node grid-wide: the node flag flips (so
// GIS queries, mappers and vgrid selection skip it), active network flows
// labeled with the node as an endpoint are killed, and every registered
// watcher is notified. It reports whether the named node exists; calls that
// do not change the state are no-ops.
func (g *Grid) SetNodeDown(name string, down bool) bool {
	n := g.nodes[name]
	if n == nil {
		return false
	}
	if n.down == down {
		return true
	}
	n.down = down
	// Watchers first: layers owning processes on the node (mpi.World) kill
	// them with their own node-loss cause. The endpoint sweep then catches
	// any remaining flows labeled with the node (IBP depot traffic, staging).
	for _, w := range append([]nodeWatcher(nil), g.watchers...) {
		w.fn(n, down)
	}
	if down {
		g.Net.FailEndpoint(name, netsim.ErrEndpointDown)
	}
	return true
}
