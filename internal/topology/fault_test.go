package topology

import (
	"errors"
	"reflect"
	"testing"

	"grads/internal/netsim"
	"grads/internal/simcore"
)

func faultGrid(sim *simcore.Sim) *Grid {
	g := NewGrid(sim)
	g.AddSite("A", 1e8, 1e-4)
	g.AddSite("B", 1e8, 1e-4)
	g.Connect("A", "B", 1.25e6, 0.011)
	g.AddNode(NodeSpec{Name: "a1", Site: "A", MHz: 1000, FlopsPerCycle: 1})
	g.AddNode(NodeSpec{Name: "b1", Site: "B", MHz: 1000, FlopsPerCycle: 1})
	return g
}

func TestSetNodeDownNotifiesWatchers(t *testing.T) {
	sim := simcore.New(1)
	g := faultGrid(sim)

	type change struct {
		node string
		down bool
	}
	var seen []change
	unsub := g.OnNodeStateChange(func(n *Node, down bool) {
		seen = append(seen, change{n.Name(), down})
	})

	if g.SetNodeDown("nosuch", true) {
		t.Fatal("unknown node accepted")
	}
	if !g.SetNodeDown("a1", true) || !g.Node("a1").Down() {
		t.Fatal("crash not applied")
	}
	// Idempotent: an unchanged state is a no-op with no duplicate notify.
	if !g.SetNodeDown("a1", true) {
		t.Fatal("repeated crash rejected")
	}
	if !g.SetNodeDown("a1", false) || g.Node("a1").Down() {
		t.Fatal("recovery not applied")
	}
	unsub()
	g.SetNodeDown("a1", true) // after unsubscribe: state flips, no notify

	want := []change{{"a1", true}, {"a1", false}}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("watcher saw %v, want %v", seen, want)
	}
	if !g.Node("a1").Down() {
		t.Fatal("unsubscribing must not block state changes")
	}
}

func TestSetNodeDownSeversFlows(t *testing.T) {
	sim := simcore.New(1)
	g := faultGrid(sim)
	a1, b1 := g.Node("a1"), g.Node("b1")
	var err error
	var moved float64
	sim.Spawn("tx", func(p *simcore.Proc) {
		// ~80 s transfer; the crash lands mid-flight.
		moved, err = g.Net.TransferLabeled(p, g.Route(a1, b1), 1e8, a1.Name(), b1.Name())
	})
	sim.At(5, func() { g.SetNodeDown("a1", true) })
	sim.Run()
	if !errors.Is(err, netsim.ErrEndpointDown) {
		t.Fatalf("flow from crashed node got %v, want ErrEndpointDown", err)
	}
	if moved >= 1e8 {
		t.Fatal("severed flow reported full delivery")
	}
}
