#!/usr/bin/env bash
# ci/determinism.sh NAME ARGS_A [ARGS_B] — one case of the CI determinism
# matrix.
#
# Runs the gradsim binary twice — with ARGS_A, then with ARGS_B (defaulting
# to ARGS_A for plain run-twice determinism) — capturing the JSONL telemetry
# trace and the stdout report of each, and fails unless both are
# byte-identical. Equivalence cases pass a different ARGS_B: the reference
# network solver (-netsim-reference) or a different shard count (-shards 4)
# must reproduce the oracle's bytes exactly.
#
# The gradsim binary is ./gradsim by default; override with $GRADSIM.
# Arguments are word-split, so spec strings (-faults 'a;b') must not contain
# spaces.
set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 NAME ARGS_A [ARGS_B]" >&2
    exit 2
fi

bin=${GRADSIM:-./gradsim}
name=$1
args_a=$2
args_b=${3:-$2}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== determinism case: $name"
echo "   a: gradsim $args_a"
# shellcheck disable=SC2086  # word-splitting the arg strings is the contract
$bin $args_a -trace-jsonl "$work/a.jsonl" >"$work/a.out"
echo "   b: gradsim $args_b"
# shellcheck disable=SC2086
$bin $args_b -trace-jsonl "$work/b.jsonl" >"$work/b.out"

fail=0
if ! cmp -s "$work/a.jsonl" "$work/b.jsonl"; then
    echo "FAIL: $name telemetry traces diverge; first differing lines:" >&2
    diff "$work/a.jsonl" "$work/b.jsonl" | head -8 >&2 || true
    fail=1
fi
if ! cmp -s "$work/a.out" "$work/b.out"; then
    echo "FAIL: $name stdout reports diverge; first differing lines:" >&2
    diff "$work/a.out" "$work/b.out" | head -8 >&2 || true
    fail=1
fi
if [ "$fail" -ne 0 ]; then
    exit 1
fi

echo "   ok: $(wc -l <"$work/a.jsonl") trace lines and $(wc -l <"$work/a.out") report lines byte-identical"
