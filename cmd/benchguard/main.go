// Command benchguard is the repo's benchmark-regression gate: it parses
// `go test -bench` output on stdin, evaluates a set of gates — each pins a
// benchmark (optionally against a baseline benchmark) to a speedup floor
// and/or an allocs/op ceiling — writes a JSON report, and fails (exit 1)
// unless every gate passes.
//
// Usage:
//
//	go test -bench 'BenchmarkKernel' -run xxx -benchmem -count 3 ./internal/simcore | \
//	    benchguard -o BENCH_kernel.json -suite kernel \
//	      -gate 'name=event_throughput,new=BenchmarkKernelEventThroughput,base=BenchmarkKernelEventThroughputLegacy,min-speedup=2.0,max-allocs=0' \
//	      -gate 'name=traced,new=BenchmarkKernelEventThroughputTraced,base=BenchmarkKernelEventThroughputTracedLegacy,min-speedup=5.0,max-allocs=0'
//
// Gate spec keys (comma-separated key=value pairs):
//
//	name        gate label in the report (defaults to the new benchmark name)
//	new         benchmark under test (required)
//	base        baseline benchmark; with it, speedup = base/new is computed
//	min-speedup speedup floor; requires base (default: none)
//	max-allocs  allocs/op ceiling on the new benchmark; requires -benchmem
//	            output (default: none)
//
// Benchmark names match exactly, or exactly up to the -N GOMAXPROCS suffix
// ("BenchmarkX" matches "BenchmarkX-8" but never "BenchmarkXLegacy-8").
// With -count > 1 the best (minimum) ns/op and the worst (maximum)
// allocs/op per benchmark are kept, damping scheduler noise on shared CI
// runners without loosening the allocation ceiling.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Gate is one benchmark constraint, parsed from a -gate flag.
type Gate struct {
	Name       string   `json:"name"`
	New        string   `json:"new_benchmark"`
	Base       string   `json:"base_benchmark,omitempty"`
	MinSpeedup float64  `json:"min_speedup,omitempty"`
	MaxAllocs  *int64   `json:"max_allocs_op,omitempty"`
	NewNsOp    float64  `json:"new_ns_op"`
	BaseNsOp   float64  `json:"base_ns_op,omitempty"`
	Speedup    float64  `json:"speedup,omitempty"`
	NewAllocs  *int64   `json:"new_allocs_op,omitempty"`
	Failures   []string `json:"failures,omitempty"`
	Pass       bool     `json:"pass"`
}

// Report is the JSON shape of the BENCH_*.json files.
type Report struct {
	Suite string `json:"suite"`
	Gates []Gate `json:"gates"`
	Pass  bool   `json:"pass"`
}

// result accumulates the best-of-count measurements for one benchmark.
type result struct {
	nsOp      float64
	allocs    int64
	hasAllocs bool
	seen      bool
}

type gateFlags []string

func (g *gateFlags) String() string     { return strings.Join(*g, "; ") }
func (g *gateFlags) Set(v string) error { *g = append(*g, v); return nil }

func main() {
	out := flag.String("o", "BENCH.json", "report output path")
	suite := flag.String("suite", "bench", "suite name recorded in the report")
	var specs gateFlags
	flag.Var(&specs, "gate", "gate spec 'name=...,new=Benchmark...,base=Benchmark...,min-speedup=2.0,max-allocs=0' (repeatable)")
	flag.Parse()

	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no -gate flags given")
		os.Exit(1)
	}
	gates := make([]Gate, len(specs))
	for i, spec := range specs {
		g, err := parseGate(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: bad -gate %q: %v\n", spec, err)
			os.Exit(1)
		}
		gates[i] = g
	}

	results := map[string]*result{}
	for _, g := range gates {
		results[g.New] = &result{}
		if g.Base != "" {
			results[g.Base] = &result{}
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw bench output through
		name, ns, allocs, hasAllocs, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		for want, r := range results {
			if !benchNameMatches(name, want) {
				continue
			}
			if !r.seen || ns < r.nsOp {
				r.nsOp = ns
			}
			if hasAllocs && (!r.hasAllocs || allocs > r.allocs) {
				r.allocs, r.hasAllocs = allocs, true
			}
			r.seen = true
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: reading stdin:", err)
		os.Exit(1)
	}

	rep := Report{Suite: *suite, Pass: true}
	for _, g := range gates {
		evalGate(&g, results)
		if !g.Pass {
			rep.Pass = false
		}
		rep.Gates = append(rep.Gates, g)
		printGate(&g)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
	fmt.Printf("benchguard: suite %s -> %s\n", rep.Suite, passWord(rep.Pass))
	if !rep.Pass {
		os.Exit(1)
	}
}

// evalGate fills the measured fields of g from results and decides pass.
func evalGate(g *Gate, results map[string]*result) {
	g.Pass = true
	fail := func(format string, args ...any) {
		g.Failures = append(g.Failures, fmt.Sprintf(format, args...))
		g.Pass = false
	}
	nr := results[g.New]
	if !nr.seen {
		fail("benchmark %s not found in input", g.New)
		return
	}
	g.NewNsOp = nr.nsOp
	if nr.hasAllocs {
		a := nr.allocs
		g.NewAllocs = &a
	}
	if g.Base != "" {
		br := results[g.Base]
		if !br.seen {
			fail("baseline benchmark %s not found in input", g.Base)
			return
		}
		g.BaseNsOp = br.nsOp
		g.Speedup = br.nsOp / nr.nsOp
		if g.MinSpeedup > 0 && g.Speedup < g.MinSpeedup {
			fail("speedup %.2fx below floor %.2fx", g.Speedup, g.MinSpeedup)
		}
	}
	if g.MaxAllocs != nil {
		if !nr.hasAllocs {
			fail("no allocs/op for %s (run go test with -benchmem)", g.New)
		} else if nr.allocs > *g.MaxAllocs {
			fail("%d allocs/op above ceiling %d", nr.allocs, *g.MaxAllocs)
		}
	}
}

func printGate(g *Gate) {
	var b strings.Builder
	fmt.Fprintf(&b, "benchguard: gate %-22s %10.1f ns/op", g.Name, g.NewNsOp)
	if g.Base != "" && g.BaseNsOp > 0 {
		fmt.Fprintf(&b, "  vs %10.1f ns/op  speedup %5.2fx", g.BaseNsOp, g.Speedup)
		if g.MinSpeedup > 0 {
			fmt.Fprintf(&b, " (floor %.2fx)", g.MinSpeedup)
		}
	}
	if g.NewAllocs != nil {
		fmt.Fprintf(&b, "  %d allocs/op", *g.NewAllocs)
		if g.MaxAllocs != nil {
			fmt.Fprintf(&b, " (ceiling %d)", *g.MaxAllocs)
		}
	}
	fmt.Fprintf(&b, " -> %s", passWord(g.Pass))
	fmt.Println(b.String())
	for _, f := range g.Failures {
		fmt.Printf("benchguard:   %s\n", f)
	}
}

// parseGate parses one -gate spec of comma-separated key=value pairs.
func parseGate(spec string) (Gate, error) {
	var g Gate
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return g, fmt.Errorf("expected key=value, got %q", kv)
		}
		switch k {
		case "name":
			g.Name = v
		case "new":
			g.New = v
		case "base":
			g.Base = v
		case "min-speedup":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				return g, fmt.Errorf("bad min-speedup %q", v)
			}
			g.MinSpeedup = f
		case "max-allocs":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return g, fmt.Errorf("bad max-allocs %q", v)
			}
			g.MaxAllocs = &n
		default:
			return g, fmt.Errorf("unknown key %q", k)
		}
	}
	if g.New == "" {
		return g, fmt.Errorf("missing new=")
	}
	if g.MinSpeedup > 0 && g.Base == "" {
		return g, fmt.Errorf("min-speedup requires base=")
	}
	if g.Name == "" {
		g.Name = strings.TrimPrefix(g.New, "Benchmark")
	}
	return g, nil
}

func passWord(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

// benchNameMatches reports whether a result line's benchmark name is want:
// exact, or want plus the "-N" GOMAXPROCS suffix go test appends. A plain
// prefix match would be wrong — "BenchmarkX" must not match
// "BenchmarkXLegacy-8".
func benchNameMatches(name, want string) bool {
	if name == want {
		return true
	}
	return strings.HasPrefix(name, want) && len(name) > len(want) && name[len(want)] == '-'
}

// parseBenchLine extracts the name, ns/op and (with -benchmem) allocs/op of
// one `go test -bench` result line
// ("BenchmarkX-8  1000  1234 ns/op  5 B/op  2 allocs/op").
func parseBenchLine(line string) (name string, nsOp float64, allocs int64, hasAllocs, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, 0, false, false
	}
	found := false
	for i := 2; i+1 < len(fields); i++ {
		switch fields[i+1] {
		case "ns/op":
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, 0, false, false
			}
			nsOp, found = v, true
		case "allocs/op":
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err == nil {
				allocs, hasAllocs = v, true
			}
		}
	}
	if !found {
		return "", 0, 0, false, false
	}
	return fields[0], nsOp, allocs, hasAllocs, true
}
