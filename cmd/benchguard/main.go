// Command benchguard is the benchmark-regression gate for the netsim
// solver: it parses `go test -bench` output on stdin, extracts the
// reference and incremental timings of the 64-node/512-flow solver
// benchmark, writes a BENCH_netsim.json report, and fails (exit 1) unless
// the incremental solver beats the reference solver.
//
// Usage:
//
//	go test -bench 'BenchmarkSolver64Nodes512Flows' -run xxx \
//	    -count 3 ./internal/netsim | benchguard -o BENCH_netsim.json
//
// With -count > 1 the best (minimum) ns/op per benchmark is kept, damping
// scheduler noise on shared CI runners. The optional -min-speedup flag
// raises the bar above "merely faster" (the acceptance target is 3x).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Report is the JSON shape of BENCH_netsim.json.
type Report struct {
	Benchmark       string  `json:"benchmark"`
	ReferenceNsOp   float64 `json:"reference_ns_op"`
	IncrementalNsOp float64 `json:"incremental_ns_op"`
	Speedup         float64 `json:"speedup"`
	MinSpeedup      float64 `json:"min_speedup"`
	Pass            bool    `json:"pass"`
}

func main() {
	out := flag.String("o", "BENCH_netsim.json", "report output path")
	minSpeedup := flag.Float64("min-speedup", 1.0, "fail unless incremental is at least this many times faster")
	flag.Parse()

	ref, inc := 0.0, 0.0
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw bench output through
		name, ns, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(name, "BenchmarkSolver64Nodes512FlowsReference"):
			if ref == 0 || ns < ref {
				ref = ns
			}
		case strings.HasPrefix(name, "BenchmarkSolver64Nodes512FlowsIncremental"):
			if inc == 0 || ns < inc {
				inc = ns
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: reading stdin:", err)
		os.Exit(1)
	}
	if ref == 0 || inc == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: did not find both BenchmarkSolver64Nodes512Flows{Reference,Incremental} results")
		os.Exit(1)
	}

	r := Report{
		Benchmark:       "Solver64Nodes512Flows",
		ReferenceNsOp:   ref,
		IncrementalNsOp: inc,
		Speedup:         ref / inc,
		MinSpeedup:      *minSpeedup,
		Pass:            ref/inc >= *minSpeedup && inc < ref,
	}
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
	fmt.Printf("benchguard: reference %.0f ns/op, incremental %.0f ns/op, speedup %.2fx (floor %.2fx) -> %s\n",
		ref, inc, r.Speedup, r.MinSpeedup, passWord(r.Pass))
	if !r.Pass {
		os.Exit(1)
	}
}

func passWord(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

// parseBenchLine extracts the name and ns/op of one `go test -bench` result
// line ("BenchmarkX-8  1000  1234 ns/op  ...").
func parseBenchLine(line string) (name string, nsOp float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return fields[0], v, true
		}
	}
	return "", 0, false
}
