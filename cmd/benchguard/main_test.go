package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line      string
		name      string
		ns        float64
		allocs    int64
		hasAllocs bool
		ok        bool
	}{
		{"BenchmarkKernelEventThroughput-8  24729818  90.44 ns/op  0 B/op  0 allocs/op",
			"BenchmarkKernelEventThroughput-8", 90.44, 0, true, true},
		{"BenchmarkX  1000  1234 ns/op", "BenchmarkX", 1234, 0, false, true},
		{"BenchmarkY-16  5  17454561 ns/op  8980003 B/op  201309 allocs/op",
			"BenchmarkY-16", 17454561, 201309, true, true},
		{"goos: linux", "", 0, 0, false, false},
		{"PASS", "", 0, 0, false, false},
		{"BenchmarkBroken  1000  fast ns/op", "", 0, 0, false, false},
	}
	for _, c := range cases {
		name, ns, allocs, hasAllocs, ok := parseBenchLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns || allocs != c.allocs || hasAllocs != c.hasAllocs {
			t.Errorf("parseBenchLine(%q) = (%q, %v, %d, %v, %v), want (%q, %v, %d, %v, %v)",
				c.line, name, ns, allocs, hasAllocs, ok, c.name, c.ns, c.allocs, c.hasAllocs, c.ok)
		}
	}
}

func TestBenchNameMatches(t *testing.T) {
	cases := []struct {
		name, want string
		match      bool
	}{
		{"BenchmarkX", "BenchmarkX", true},
		{"BenchmarkX-8", "BenchmarkX", true},
		{"BenchmarkX-128", "BenchmarkX", true},
		{"BenchmarkXLegacy", "BenchmarkX", false},
		{"BenchmarkXLegacy-8", "BenchmarkX", false},
		{"BenchmarkX", "BenchmarkXLegacy", false},
	}
	for _, c := range cases {
		if got := benchNameMatches(c.name, c.want); got != c.match {
			t.Errorf("benchNameMatches(%q, %q) = %v, want %v", c.name, c.want, got, c.match)
		}
	}
}

func TestParseGate(t *testing.T) {
	g, err := parseGate("name=churn,new=BenchmarkNew,base=BenchmarkOld,min-speedup=2.5,max-allocs=0")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "churn" || g.New != "BenchmarkNew" || g.Base != "BenchmarkOld" ||
		g.MinSpeedup != 2.5 || g.MaxAllocs == nil || *g.MaxAllocs != 0 {
		t.Fatalf("parsed gate %+v", g)
	}

	if g, err = parseGate("new=BenchmarkSolo,max-allocs=3"); err != nil {
		t.Fatal(err)
	} else if g.Name != "Solo" {
		t.Fatalf("default name = %q, want Solo", g.Name)
	}

	for _, bad := range []string{
		"",                                // missing new=
		"base=BenchmarkOld",               // missing new=
		"new=BenchmarkX,min-speedup=2",    // floor without base
		"new=BenchmarkX,min-speedup=fast", // unparsable floor
		"new=BenchmarkX,max-allocs=-1",    // negative ceiling
		"new=BenchmarkX,unknown-key=1",    // unknown key
		"new=BenchmarkX,min-speedup",      // not key=value
	} {
		if _, err := parseGate(bad); err == nil {
			t.Errorf("parseGate(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestEvalGate(t *testing.T) {
	zero := int64(0)
	results := map[string]*result{
		"BenchmarkNew":    {nsOp: 100, allocs: 0, hasAllocs: true, seen: true},
		"BenchmarkOld":    {nsOp: 550, allocs: 1, hasAllocs: true, seen: true},
		"BenchmarkNoMem":  {nsOp: 10, seen: true},
		"BenchmarkAbsent": {},
	}

	g := Gate{New: "BenchmarkNew", Base: "BenchmarkOld", MinSpeedup: 5, MaxAllocs: &zero}
	evalGate(&g, results)
	if !g.Pass || g.Speedup != 5.5 || g.NewAllocs == nil || *g.NewAllocs != 0 {
		t.Fatalf("passing gate evaluated to %+v", g)
	}

	g = Gate{New: "BenchmarkNew", Base: "BenchmarkOld", MinSpeedup: 6}
	evalGate(&g, results)
	if g.Pass || len(g.Failures) != 1 || !strings.Contains(g.Failures[0], "below floor") {
		t.Fatalf("speedup floor not enforced: %+v", g)
	}

	g = Gate{New: "BenchmarkOld", MaxAllocs: &zero}
	evalGate(&g, results)
	if g.Pass || !strings.Contains(strings.Join(g.Failures, ";"), "above ceiling") {
		t.Fatalf("alloc ceiling not enforced: %+v", g)
	}

	g = Gate{New: "BenchmarkNoMem", MaxAllocs: &zero}
	evalGate(&g, results)
	if g.Pass || !strings.Contains(strings.Join(g.Failures, ";"), "-benchmem") {
		t.Fatalf("missing -benchmem not reported: %+v", g)
	}

	g = Gate{New: "BenchmarkAbsent"}
	evalGate(&g, results)
	if g.Pass {
		t.Fatalf("absent benchmark passed: %+v", g)
	}
}
