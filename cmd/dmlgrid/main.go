// Command dmlgrid validates a DML grid description (the MicroGrid-style
// configuration format) and prints the resulting resource inventory,
// routes, and an NWS snapshot after a warm-up period.
//
// Usage:
//
//	dmlgrid path/to/grid.dml
//	dmlgrid -warmup 120 path/to/grid.dml
//	echo 'site A bw=1Gb lat=100us ...' | dmlgrid -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"grads/internal/nws"
	"grads/internal/simcore"
	"grads/internal/topology"
)

func main() {
	warmup := flag.Float64("warmup", 60, "virtual seconds of NWS measurements before the snapshot")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dmlgrid [-warmup s] <file.dml | ->")
		os.Exit(2)
	}

	var text []byte
	var err error
	if flag.Arg(0) == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmlgrid:", err)
		os.Exit(1)
	}

	sim := simcore.New(1)
	grid, err := topology.ParseDML(sim, string(text))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmlgrid:", err)
		os.Exit(1)
	}

	fmt.Printf("grid: %d sites, %d nodes\n\n", len(grid.Sites()), len(grid.Nodes()))
	for _, site := range grid.Sites() {
		fmt.Printf("site %-8s LAN %.1f MB/s, %.2f ms, %d nodes\n",
			site.Name, site.LAN.Capacity()/1e6, site.LAN.Latency()*1e3, len(site.Nodes()))
		for _, n := range site.Nodes() {
			fmt.Printf("  %-12s %-5s %6.0f MHz  %6.2f Gflop/s  %6.0f MB  L2 %d KB\n",
				n.Name(), n.Spec.Arch, n.Spec.MHz, n.Spec.Flops()/1e9,
				n.Spec.MemMB, n.Spec.Cache.L2KB)
		}
	}

	fmt.Println("\nWAN links:")
	sites := grid.Sites()
	for i := range sites {
		for j := i + 1; j < len(sites); j++ {
			if w := grid.WAN(sites[i].Name, sites[j].Name); w != nil {
				fmt.Printf("  %s <-> %s  %.2f MB/s, %.1f ms\n",
					sites[i].Name, sites[j].Name, w.Capacity()/1e6, w.Latency()*1e3)
			}
		}
	}

	if *warmup > 0 && len(grid.Nodes()) > 1 {
		weather := nws.Start(sim, grid, 10)
		sim.RunUntil(*warmup)
		fmt.Printf("\nNWS snapshot after %.0fs of measurements:\n", *warmup)
		for i := range sites {
			for j := i + 1; j < len(sites); j++ {
				if grid.WAN(sites[i].Name, sites[j].Name) == nil {
					continue
				}
				fmt.Printf("  %s <-> %s  forecast %.2f MB/s, %.1f ms\n",
					sites[i].Name, sites[j].Name,
					weather.BandwidthForecast(sites[i].Name, sites[j].Name)/1e6,
					weather.LatencyForecast(sites[i].Name, sites[j].Name)*1e3)
			}
		}
		weather.Stop()
	}
}
