// Command gradsim regenerates the paper's tables and figures on the
// emulated Grid.
//
// Usage:
//
//	gradsim -exp fig3            # Figure 3 phase breakdown
//	gradsim -exp fig3-decisions  # §4.1.2 rescheduler decision table
//	gradsim -exp fig4            # Figure 4 N-body progress trace
//	gradsim -exp eman            # §3.3 EMAN workflow scheduling
//	gradsim -exp eman-dag        # Figure 2 workflow structure
//	gradsim -exp heuristics      # §3.1 heuristic ablation
//	gradsim -exp swap-policies   # §4.2 swapping-policy ablation
//	gradsim -exp opportunistic   # §4.1.1 opportunistic rescheduling
//	gradsim -exp contention      # metascheduler contention sweep
//	gradsim -exp all             # everything
//
// Run `gradsim -list` for the full registry-derived list with titles;
// `-seed N` overrides the RNG seed of seeded experiments.
//
// Sharded emulation (see the README "Sharded emulation" section):
//
//	gradsim -exp scale               # 10k-node scaling curve (wall-clock)
//	gradsim -exp scale-smoke -shards 4
//	                                 # shard-equivalence smoke; stdout and
//	                                 # -trace-jsonl are byte-identical for
//	                                 # any -shards N
//
// Observability (see the README "Observability" section):
//
//	gradsim -exp fig4 -trace out.json        # Chrome trace_event JSON for
//	                                         # chrome://tracing / Perfetto
//	gradsim -exp fig4 -trace-jsonl out.jsonl # typed-event JSONL stream
//	                                         # (byte-identical across runs)
//	gradsim -exp fig4 -metrics               # metric summary after the run
//
// Fault injection (see the README "Fault injection" section):
//
//	gradsim -faults 'crash@100-400:utk1;outage@10-40:nws'
//	                                         # run QR under an explicit fault
//	                                         # schedule; combine with -trace-jsonl
//	                                         # to capture the fault timeline
//
// List scheduling (see the README "List-scheduling engine" section):
//
//	gradsim -exp dagzoo                      # heuristic x rescheduling-policy
//	                                         # leaderboard over the DAG zoo
//	gradsim -zoo 'fanout:width=24,ccr=4' -heuristic heft
//	                                         # schedule an explicit zoo spec
//	                                         # with one heuristic
//
// Serving (see the README "Front door / serving" section):
//
//	gradsim -exp serve                       # arrival-rate x routing-policy sweep
//	gradsim -arrivals 'poisson@0-600:rate=0.2' -route ucb
//	                                         # explicit request workload through
//	                                         # the front door
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"grads"
	"grads/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run ('all' or one of: "+
		strings.Join(grads.Experiments(), ", ")+")")
	list := flag.Bool("list", false, "list available experiments and exit")
	seed := flag.Int64("seed", 0, "override the RNG seed of seeded experiments (0 keeps each experiment's default)")
	csv := flag.Bool("csv", false, "emit CSV instead of a formatted table (tabular experiments only)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON to this file (open in chrome://tracing or Perfetto)")
	jsonlOut := flag.String("trace-jsonl", "", "stream typed telemetry events to this file as JSON lines")
	metrics := flag.Bool("metrics", false, "print the telemetry metric summary after the run")
	faults := flag.String("faults", "", "run the QR workload under this fault schedule "+
		"(events 'kind@start[-end]:target[:value]' joined by ';', e.g. 'crash@100-400:utk1;outage@10-40:nws')")
	netRef := flag.Bool("netsim-reference", false, "use the reference (global) network solver instead of the incremental one (traces are byte-identical either way)")
	shards := flag.Int("shards", 1, "shard kernels for the sharded experiments (scale, scale-smoke); 1 is the single-kernel oracle, any N is trace-identical")
	jobs := flag.String("jobs", "", "run an explicit metascheduler submission stream "+
		"(entries 'kind@submit:key=value,...' joined by ';', e.g. 'qr@0:n=3000,w=8,min=4,bid=40;farm@25:tasks=24,w=4,bid=3')")
	arrivals := flag.String("arrivals", "", "serve an explicit request workload through the front door "+
		"(phases 'kind@start-end:param,...' joined by ';', e.g. 'poisson@0-600:rate=0.2;flash@0-600:rate=0,peak=0.5,at=300,hold=60,mix=int:1')")
	route := flag.String("route", "ucb", "front-door routing policy for -arrivals (one of: rr, least, wrand, ucb, eps)")
	zoo := flag.String("zoo", "", "schedule an explicit DAG-zoo spec with the -heuristic list scheduler "+
		"(entries 'class[:key=value,...]' joined by ';', e.g. 'chain:n=16,ccr=0.5;fanout:width=24,ccr=4;eman')")
	heuristic := flag.String("heuristic", "heft", "list-scheduling heuristic for -zoo (one of: heft, cpop, sufferage-list, min-min)")
	flag.Parse()

	if *list {
		infos := grads.Describe()
		width := 0
		for _, info := range infos {
			if len(info.Name) > width {
				width = len(info.Name)
			}
		}
		for _, info := range infos {
			csvMark := ""
			if info.HasCSV {
				csvMark = " [csv]"
			}
			fmt.Printf("%-*s  %s%s\n", width, info.Name, info.Title, csvMark)
		}
		return
	}

	grads.SetSeed(*seed)
	grads.SetReferenceSolver(*netRef)
	grads.SetShards(*shards)

	var tel *telemetry.Telemetry
	if *traceOut != "" || *jsonlOut != "" || *metrics {
		tel = telemetry.New()
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gradsim:", err)
				os.Exit(1)
			}
			tel.AddSink(telemetry.NewChromeSink(f))
		}
		if *jsonlOut != "" {
			f, err := os.Create(*jsonlOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gradsim:", err)
				os.Exit(1)
			}
			tel.AddSink(telemetry.NewJSONL(f))
		}
		grads.SetTelemetry(tel)
	}

	var out string
	var err error
	switch {
	case *zoo != "":
		out, err = grads.RunZoo(*zoo, *heuristic)
	case *arrivals != "":
		out, err = grads.RunArrivals(*arrivals, *route)
	case *jobs != "":
		out, err = grads.RunJobStream(*jobs)
	case *faults != "":
		out, err = grads.RunFaultSpec(*faults)
	case *csv:
		out, err = grads.RunExperimentCSV(*exp)
	case *exp == "all":
		out, err = grads.RunAll()
	default:
		out, err = grads.RunExperiment(*exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gradsim:", err)
		os.Exit(1)
	}
	fmt.Print(out)

	if tel != nil {
		if cerr := tel.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "gradsim:", cerr)
			os.Exit(1)
		}
		if *metrics {
			fmt.Println("\n==== telemetry summary ====")
			fmt.Println()
			fmt.Print(tel.Summary())
		}
	}
}
