package grads

// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact; see DESIGN.md §3 for the experiment index),
// plus micro-benchmarks of the substrates they are built on. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks measure the wall cost of regenerating the
// artifact on the emulator; the reported virtual-time results themselves
// are in EXPERIMENTS.md.

import (
	"io"
	"math/rand"
	"testing"

	"grads/internal/apps"
	"grads/internal/chaossoak"
	"grads/internal/core"
	"grads/internal/experiments"
	"grads/internal/linalg"
	"grads/internal/mpi"
	"grads/internal/netsim"
	"grads/internal/nws"
	"grads/internal/perfmodel"
	"grads/internal/rescheduler"
	"grads/internal/simcore"
	"grads/internal/swap"
	"grads/internal/telemetry"
	"grads/internal/topology"
	"grads/internal/vgrid"
)

// --- Figure 3 (§4.1.2): QR stop/restart with phase breakdown ---

func BenchmarkFig3QRStopRestart(b *testing.B) {
	cfg := experiments.DefaultFig3Config()
	cfg.Sizes = []int{8000} // the crossover size; the CLI sweeps all sizes
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].MigrationHelps {
			b.Fatal("N=8000 should benefit from migration")
		}
	}
}

// --- Figure 4 (§4.2.2): N-body under process swapping on the MicroGrid ---

func BenchmarkFig4NBodySwap(b *testing.B) {
	cfg := experiments.DefaultFig4Config()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Swaps != 3 {
			b.Fatalf("swaps = %d", r.Swaps)
		}
	}
}

// --- §3.3: EMAN workflow scheduling on the heterogeneous MacroGrid ---

func BenchmarkEMANWorkflowSchedule(b *testing.B) {
	cfg := experiments.DefaultEMANConfig()
	wf, err := apps.EMANWorkflow(cfg.Particles, cfg.Width)
	if err != nil {
		b.Fatal(err)
	}
	expanded := wf.Expand()
	grid := topology.MacroGrid(simcore.New(1))
	s := core.NewScheduler(grid, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(expanded, grid.Nodes()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEMANScheduleExecution(b *testing.B) {
	cfg := experiments.DefaultEMANConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEMAN(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §3.1 ablation: mapping heuristics over the performance matrix ---

func BenchmarkSchedulerHeuristics(b *testing.B) {
	grid := topology.MacroGrid(simcore.New(1))
	wf, err := apps.RandomWorkflow(rand.New(rand.NewSource(3)), 5, 10, 3)
	if err != nil {
		b.Fatal(err)
	}
	s := core.NewScheduler(grid, nil)
	for _, h := range core.Heuristics {
		b.Run(h, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.ScheduleWith(h, wf, grid.Nodes()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §4.2 ablation: swapping policies ---

func BenchmarkSwapPolicies(b *testing.B) {
	cfg := experiments.DefaultFig4Config()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSwapPolicies(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §4.1.1: opportunistic rescheduling ---

func BenchmarkOpportunistic(b *testing.B) {
	cfg := experiments.DefaultOpportunisticConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOpportunistic(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkSimcoreEventThroughput(b *testing.B) {
	sim := simcore.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(float64(i%1000), func() {})
		if i%1024 == 1023 {
			sim.Run()
		}
	}
	sim.Run()
}

// BenchmarkSimcoreEventThroughputTraced is the same loop with a telemetry
// hub attached (no sinks), measuring the enabled-path cost of the kernel
// counters relative to the nil-guard fast path above.
func BenchmarkSimcoreEventThroughputTraced(b *testing.B) {
	sim := simcore.New(1)
	sim.SetTelemetry(telemetry.New())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(float64(i%1000), func() {})
		if i%1024 == 1023 {
			sim.Run()
		}
	}
	sim.Run()
}

func BenchmarkSimcoreProcessSwitch(b *testing.B) {
	sim := simcore.New(1)
	iters := b.N
	sim.Spawn("w", func(p *simcore.Proc) {
		for i := 0; i < iters; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	sim.Run()
}

func BenchmarkCPUProcessorSharing(b *testing.B) {
	sim := simcore.New(1)
	grid := topology.NewGrid(sim)
	grid.AddSite("A", 1e8, 0)
	node := grid.AddNode(topology.NodeSpec{Name: "n", Site: "A", MHz: 1000, FlopsPerCycle: 1})
	iters := b.N
	for w := 0; w < 8; w++ {
		sim.Spawn("w", func(p *simcore.Proc) {
			for i := 0; i < iters/8+1; i++ {
				node.CPU.Compute(p, 1e6)
			}
		})
	}
	b.ResetTimer()
	sim.Run()
}

func BenchmarkNetMaxMinReallocate(b *testing.B) {
	sim := simcore.New(1)
	net := netsim.New(sim)
	links := make([]*netsim.Link, 8)
	for i := range links {
		links[i] = net.AddLink(string(rune('a'+i)), 1e7, 1e-4)
	}
	iters := b.N
	for f := 0; f < 16; f++ {
		route := []*netsim.Link{links[f%8], links[(f+3)%8]}
		sim.Spawn("tx", func(p *simcore.Proc) {
			for i := 0; i < iters/16+1; i++ {
				net.Transfer(p, route, 1e5)
			}
		})
	}
	b.ResetTimer()
	sim.Run()
}

func BenchmarkMPIAllreduce(b *testing.B) {
	sim := simcore.New(1)
	grid := topology.NewGrid(sim)
	grid.AddSite("A", 1e9, 1e-5)
	var nodes []*topology.Node
	for i := 0; i < 8; i++ {
		nodes = append(nodes, grid.AddNode(topology.NodeSpec{
			Name: string(rune('a' + i)), Site: "A", MHz: 1000, FlopsPerCycle: 1,
		}))
	}
	world := mpi.NewWorld(sim, grid, "bench", nodes)
	comm := world.WorldComm()
	iters := b.N
	world.Start(func(ctx *mpi.Ctx) {
		for i := 0; i < iters; i++ {
			if _, err := comm.Allreduce(ctx, 1e3, nil, nil); err != nil {
				return
			}
		}
	})
	b.ResetTimer()
	sim.Run()
}

func BenchmarkForecasterEnsemble(b *testing.B) {
	e := nws.NewEnsemble()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < b.N; i++ {
		e.Update(rng.Float64())
		_ = e.Forecast()
	}
}

func BenchmarkPolyfitCubic(b *testing.B) {
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		x := float64(i + 1)
		xs[i] = x
		ys[i] = 1 + 2*x + 0.5*x*x + 0.01*x*x*x
	}
	for i := 0; i < b.N; i++ {
		if _, err := perfmodel.Polyfit(xs, ys, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMRDPredict(b *testing.B) {
	ns := []float64{100, 200, 300, 400, 500}
	hists := make([]perfmodel.Histogram, len(ns))
	for i, n := range ns {
		hists[i] = perfmodel.Histogram{
			{Dist: 64, Count: 100 * n},
			{Dist: 2 * n, Count: 10 * n},
			{Dist: n * n / 8, Count: n},
		}
	}
	m, err := perfmodel.FitMRD(ns, hists, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Misses(float64(1000+i%1000), 16384)
	}
}

func BenchmarkHouseholderQR64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := linalg.Random(rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.QR(a)
	}
}

func BenchmarkBlockCyclicRedistribute(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := linalg.Random(rng, 64, 256)
	locals := linalg.Distribute(a, 8, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.Redistribute(locals, 8, 12)
	}
}

func BenchmarkRankMatrix(b *testing.B) {
	grid := topology.MacroGrid(simcore.New(1))
	wf, err := apps.EMANWorkflow(400, 24)
	if err != nil {
		b.Fatal(err)
	}
	expanded := wf.Expand()
	s := core.NewScheduler(grid, nil)
	assigned := make([]core.Assignment, expanded.Len())
	ready := []int{0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Matrix(expanded, ready, grid.Nodes(), assigned)
	}
}

func BenchmarkRescheduleDecision(b *testing.B) {
	sim := simcore.New(1)
	grid := topology.QRTestbed(sim)
	r := rescheduler.New(grid, nil)
	grid.Node("utk1").CPU.SetExternalLoad(1)
	candidates := rescheduler.SiteCandidates(grid.Nodes())
	app := &benchEstimator{}
	utk := grid.Site("UTK").Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Evaluate(app, utk, candidates)
	}
}

// benchEstimator is a minimal rescheduler.Estimator for decision benches.
type benchEstimator struct{}

func (benchEstimator) RemainingTime(nodes []*topology.Node, avail func(*topology.Node) float64) float64 {
	slowest := 1e30
	for _, n := range nodes {
		if r := n.Spec.Flops() * avail(n); r < slowest {
			slowest = r
		}
	}
	return 1e12 / (slowest * float64(len(nodes)))
}
func (benchEstimator) CheckpointBytes() float64 { return 5e8 }
func (benchEstimator) RestartOverhead() float64 { return 30 }

func BenchmarkSwapPolicyDecide(b *testing.B) {
	active := []swap.Candidate{{Phys: 0, VRank: 0, Speed: 2e8}, {Phys: 1, VRank: 1, Speed: 7e7}, {Phys: 2, VRank: 2, Speed: 2e8}}
	inactive := []swap.Candidate{{Phys: 3, VRank: -1, Speed: 1.8e8}, {Phys: 4, VRank: -1, Speed: 1.8e8}, {Phys: 5, VRank: -1, Speed: 1.8e8}}
	site := map[int]string{0: "A", 1: "A", 2: "A", 3: "B", 4: "B", 5: "B"}
	p := swap.GangPolicy{Gain: 1.2, SiteOf: func(phys int) string { return site[phys] }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Decide(active, inactive)
	}
}

func BenchmarkEconomyMarkets(b *testing.B) {
	cfg := experiments.DefaultEconomyConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEconomy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVGridFind(b *testing.B) {
	grid := topology.MacroGrid(simcore.New(1))
	f := vgrid.NewFinder(grid, nil, nil)
	spec := vgrid.Spec{Name: "bench", Kind: vgrid.TightBag, MinNodes: 30, MaxLatency: 0.015}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Find(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelQRRealData(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := linalg.Random(rng, 48, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := simcore.New(1)
		g := topology.NewGrid(sim)
		g.AddSite("A", 1e8, 1e-4)
		var nodes []*topology.Node
		for j := 0; j < 4; j++ {
			nodes = append(nodes, g.AddNode(topology.NodeSpec{
				Name: "n" + string(rune('a'+j)), Site: "A", MHz: 1000, FlopsPerCycle: 1,
			}))
		}
		if _, err := apps.RunParallelQR(sim, g, nodes, a, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultRecovery(b *testing.B) {
	cfg := experiments.DefaultFaultConfig()
	cfg.Intervals = []int{20}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFault(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Allocation-free kernel tentpole: end-to-end trace cost ---

// BenchmarkE2E runs the chaos study's QR scenario (a full seeded
// checkpoint/restart simulation) with JSONL tracing attached, using the
// batched append-style encoder; BenchmarkE2EReference is the identical run
// through the json.Marshal reference sink the encoder replaced. The pair is
// gated by cmd/benchguard (BENCH_e2e.json): the whole-simulation win is
// bounded by the share of time spent encoding, so the floor is modest —
// the per-event wins are gated in BENCH_kernel.json.
func BenchmarkE2E(b *testing.B)          { benchmarkE2E(b, telemetry.NewJSONL) }
func BenchmarkE2EReference(b *testing.B) { benchmarkE2E(b, telemetry.NewJSONLReference) }

// BenchmarkE2ENoFaultBare / Guarded run the identical fault-free soak
// workload with the resilience guard layer (circuit breakers + retry
// budgets) absent vs. installed. The benchguard gate requires Guarded to
// stay within ~2% of Bare (min-speedup 0.98): on a healthy grid the
// guards must be free, because every service call pays their bookkeeping.
func BenchmarkE2ENoFaultBare(b *testing.B)    { benchmarkE2ENoFault(b, false) }
func BenchmarkE2ENoFaultGuarded(b *testing.B) { benchmarkE2ENoFault(b, true) }

func benchmarkE2ENoFault(b *testing.B, guards bool) {
	cfg := chaossoak.SmokeConfig(1)
	cfg.NoFaults = true
	cfg.Guards = guards
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := chaossoak.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Drained || len(r.Violations) != 0 || r.LostJobs != 0 {
			b.Fatalf("no-fault soak not clean: drained=%v violations=%d lost=%d",
				r.Drained, len(r.Violations), r.LostJobs)
		}
	}
}

func benchmarkE2E(b *testing.B, newSink func(w io.Writer) *telemetry.JSONL) {
	cfg := experiments.DefaultChaosConfig()
	cfg.N, cfg.Particles, cfg.Width = 2000, 100, 6
	cfg.MTBFs = []float64{1500}
	defer experiments.SetTelemetry(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel := telemetry.New()
		sink := newSink(io.Discard)
		tel.AddSink(sink)
		experiments.SetTelemetry(tel)
		if _, err := experiments.RunChaos(cfg); err != nil {
			b.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
