package grads

import (
	"bytes"
	"testing"

	"grads/internal/telemetry"
)

// TestDeterminism runs the same seeded experiment twice with a JSONL sink
// attached and requires the two telemetry streams to be byte-identical —
// the property the CI determinism job checks end-to-end through the
// gradsim binary.
func TestDeterminism(t *testing.T) {
	run := func() []byte {
		var out bytes.Buffer
		tel := telemetry.New()
		tel.AddSink(telemetry.NewJSONL(&out))
		SetTelemetry(tel)
		defer SetTelemetry(nil)
		if _, err := RunExperiment("fig4"); err != nil {
			t.Fatal(err)
		}
		if err := tel.Close(); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	a := run()
	b := run()
	if len(a) == 0 {
		t.Fatal("experiment emitted no telemetry")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("seeded runs diverged: %d vs %d bytes", len(a), len(b))
	}
}
