// Package grads is a from-scratch Go reproduction of the system described
// in "New Grid Scheduling and Rescheduling Methods in the GrADS Project"
// (IPPS/IPDPS 2004): the GrADS execution framework — workflow scheduling
// with performance-model-driven ranks and the min-min/max-min/sufferage
// heuristics, performance-contract monitoring, stop/migrate/restart
// rescheduling via SRS checkpointing, and MPI process-swapping — together
// with every substrate the paper's evaluation depends on, implemented over
// a deterministic discrete-event Grid emulator (our MicroGrid equivalent).
//
// The implementation lives under internal/; this package provides the
// top-level entry points used by cmd/gradsim and the benchmarks:
//
//	out, err := grads.RunExperiment("fig3")   // regenerate Figure 3
//	fmt.Print(out)
//
// See DESIGN.md for the full system inventory and the per-experiment index,
// and EXPERIMENTS.md for paper-versus-measured results.
package grads

import (
	"fmt"
	"sort"
	"strings"

	"grads/internal/apps"
	"grads/internal/chaossoak"
	"grads/internal/experiments"
	"grads/internal/faultinject"
	"grads/internal/metasched"
	"grads/internal/telemetry"
)

// Version identifies the reproduction release.
const Version = "1.0.0"

// SetTelemetry installs an observability hub that every experiment run
// after this call publishes into: kernel, CPU-model, network-model,
// scheduler, rescheduler, contract-monitor, checkpoint and swap events,
// plus per-component metrics. Pass nil to disable (the default). The same
// seeded experiment emits a byte-identical JSONL stream on every run; see
// TestDeterminism.
func SetTelemetry(tel *telemetry.Telemetry) { experiments.SetTelemetry(tel) }

// seedOverride, when non-zero, replaces the default RNG seed of every
// seeded experiment (the gradsim -seed flag).
var seedOverride int64

// SetSeed overrides the default seed of every seeded experiment run after
// this call. Zero restores the per-experiment defaults.
func SetSeed(seed int64) { seedOverride = seed }

// SetReferenceSolver makes every experiment run after this call use the
// reference (global progressive-filling) network solver instead of the
// incremental one (the gradsim -netsim-reference flag). Both solvers produce
// byte-identical telemetry traces; the knob exists so that equivalence can be
// verified on the published experiments.
func SetReferenceSolver(on bool) { experiments.SetReferenceSolver(on) }

// SetShards selects how many shard kernels the sharded experiments (scale,
// scale-smoke) run with (the gradsim -shards flag). 1 — the default — is the
// single-kernel determinism oracle; any N produces byte-identical traces
// (see internal/shardsim and the "Sharded emulation" README section).
func SetShards(n int) { experiments.SetShards(n) }

// seedOr resolves an experiment's seed: the global override when set, else
// the experiment's default.
func seedOr(def int64) int64 {
	if seedOverride != 0 {
		return seedOverride
	}
	return def
}

// experiment is one registry entry: a one-line title (for -list and usage),
// the report driver, and an optional CSV driver. skipAll excludes an entry
// from RunAll — used by the wall-clock scale experiment, whose timings would
// break the byte-identical `-exp all` determinism contract.
type experiment struct {
	title   string
	run     func() (string, error)
	csv     func() (string, error)
	skipAll bool
}

// Info names one runnable experiment for listings.
type Info struct {
	Name, Title string
	HasCSV      bool
}

// Experiments enumerates the runnable experiment names, each regenerating
// one table or figure of the paper (see DESIGN.md §3 for the mapping).
func Experiments() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe enumerates every experiment with its one-line title, sorted by
// name. cmd/gradsim derives its -list output and usage text from this, so
// the CLI cannot drift from the registry.
func Describe() []Info {
	out := make([]Info, 0, len(registry))
	for _, name := range Experiments() {
		e := registry[name]
		out = append(out, Info{Name: name, Title: e.title, HasCSV: e.csv != nil})
	}
	return out
}

// registry maps experiment names to their titles and drivers.
var registry = map[string]experiment{
	"fig3": {
		title: "Figure 3 — QR stop/restart phase breakdown per matrix size",
		run: func() (string, error) {
			rows, err := experiments.RunFig3(experiments.DefaultFig3Config())
			if err != nil {
				return "", err
			}
			return "Figure 3 — QR stop/restart, phase breakdown per matrix size\n" +
				"(left bar = no rescheduling, right bar = rescheduling)\n\n" +
				experiments.FormatFig3(rows), nil
		},
	},
	"fig3-decisions": {
		title: "§4.1.2 — rescheduler decisions vs ground truth per matrix size",
		run: func() (string, error) {
			rows, err := experiments.RunFig3(experiments.DefaultFig3Config())
			if err != nil {
				return "", err
			}
			return "§4.1.2 — rescheduler decisions vs ground truth per matrix size\n\n" +
				experiments.FormatFig3Decisions(rows), nil
		},
		csv: func() (string, error) {
			rows, err := experiments.RunFig3(experiments.DefaultFig3Config())
			if err != nil {
				return "", err
			}
			t := &experiments.Table{Header: []string{"n", "stay_s", "migrate_s", "helps", "worstcase_migrates", "honest_migrates", "est_cost_s", "actual_cost_s"}}
			for _, r := range rows {
				t.Add(fmt.Sprint(r.N), fmt.Sprint(r.StayTotal), fmt.Sprint(r.MigrateTotal),
					fmt.Sprint(r.MigrationHelps), fmt.Sprint(r.WorstCaseDecision),
					fmt.Sprint(r.HonestDecision), fmt.Sprint(r.HonestCost), fmt.Sprint(r.ActualCost))
			}
			return t.CSV(), nil
		},
	},
	"fig4": {
		title: "Figure 4 — N-body progress under process swapping (MicroGrid)",
		run: func() (string, error) {
			r, err := experiments.RunFig4(experiments.DefaultFig4Config())
			if err != nil {
				return "", err
			}
			return "Figure 4 — N-body progress under process swapping (MicroGrid)\n\n" +
				experiments.FormatFig4(r, 20), nil
		},
		csv: func() (string, error) {
			r, err := experiments.RunFig4(experiments.DefaultFig4Config())
			if err != nil {
				return "", err
			}
			base := map[int]float64{}
			for _, m := range r.Baseline {
				base[m.Iter] = m.Time
			}
			t := &experiments.Table{Header: []string{"iteration", "t_with_swap_s", "t_no_swap_s"}}
			for _, m := range r.Progress {
				t.Add(fmt.Sprint(m.Iter), fmt.Sprint(m.Time), fmt.Sprint(base[m.Iter]))
			}
			return t.CSV(), nil
		},
	},
	"eman": {
		title: "§3.3 — EMAN refinement workflow on the heterogeneous MacroGrid",
		run: func() (string, error) {
			cfg := experiments.DefaultEMANConfig()
			cfg.Seed = seedOr(cfg.Seed)
			res, err := experiments.RunEMAN(cfg)
			if err != nil {
				return "", err
			}
			return "§3.3 — EMAN refinement workflow on the heterogeneous MacroGrid\n\n" +
				experiments.FormatEMAN(res), nil
		},
	},
	"eman-dag": {
		title: "Figure 2 — EMAN refinement workflow structure",
		run: func() (string, error) {
			cfg := experiments.DefaultEMANConfig()
			wf, err := apps.EMANWorkflow(cfg.Particles, cfg.Width)
			if err != nil {
				return "", err
			}
			return "Figure 2 — EMAN refinement workflow (expanded " +
				fmt.Sprintf("%d-way)\n\n", cfg.Width) +
				experiments.FormatEMANDag(wf.Expand()), nil
		},
	},
	"heuristics": {
		title: "§3.1 ablation — mapping heuristics on random workflows",
		run: func() (string, error) {
			cfg := experiments.DefaultHeurConfig()
			cfg.Seed = seedOr(cfg.Seed)
			res, err := experiments.RunHeuristics(cfg)
			if err != nil {
				return "", err
			}
			w, err := experiments.RunRankWeights(cfg, nil)
			if err != nil {
				return "", err
			}
			return "§3.1 ablation — mapping heuristics on random workflows\n\n" +
				experiments.FormatHeuristics(res) + "\nrank-weight sweep (w2 = data-cost weight):\n\n" +
				experiments.FormatRankWeights(w), nil
		},
	},
	"dagzoo": {
		title: "extension — DAG-zoo leaderboard: list heuristics (HEFT/CPOP/sufferage-list/min-min) x rescheduling policy",
		run: func() (string, error) {
			cfg := experiments.DefaultDagZooConfig()
			cfg.Seed = seedOr(cfg.Seed)
			classes, err := experiments.RunDagZoo(cfg)
			if err != nil {
				return "", err
			}
			return "extension — DAG-zoo leaderboard: list-scheduling heuristics x\n" +
				"rescheduling policy on the MacroGrid (every schedule passes the\n" +
				"listsched validity harness; static = ride out a mid-run slowdown,\n" +
				"remap = re-plan unstarted tasks around it)\n\n" +
				experiments.FormatDagZoo(classes), nil
		},
		csv: func() (string, error) {
			cfg := experiments.DefaultDagZooConfig()
			cfg.Seed = seedOr(cfg.Seed)
			classes, err := experiments.RunDagZoo(cfg)
			if err != nil {
				return "", err
			}
			return experiments.DagZooTable(classes).CSV(), nil
		},
	},
	"dagzoo-smoke": {
		title: "CI — compressed multi-seed dagzoo leaderboard (fails on any validity violation)",
		run: func() (string, error) {
			seeds := []int64{1, 2}
			if s := seedOr(0); s != 0 {
				seeds = []int64{s}
			}
			return experiments.RunDagZooSmoke(seeds)
		},
	},
	"swap-policies": {
		title: "§4.2 ablation — swapping policies on the Figure 4 scenario",
		run: func() (string, error) {
			res, err := experiments.RunSwapPolicies(experiments.DefaultFig4Config())
			if err != nil {
				return "", err
			}
			return "§4.2 ablation — swapping policies on the Figure 4 scenario\n\n" +
				experiments.FormatSwapPolicies(res), nil
		},
	},
	"opportunistic": {
		title: "§4.1.1 — opportunistic rescheduling onto freed resources",
		run: func() (string, error) {
			r, err := experiments.RunOpportunistic(experiments.DefaultOpportunisticConfig())
			if err != nil {
				return "", err
			}
			return "§4.1.1 — opportunistic rescheduling onto freed resources\n\n" +
				experiments.FormatOpportunistic(r), nil
		},
	},
	"fault": {
		title: "extension — fault tolerance: crash recovery from SRS checkpoints",
		run: func() (string, error) {
			res, err := experiments.RunFault(experiments.DefaultFaultConfig())
			if err != nil {
				return "", err
			}
			return "extension (paper conclusion) — fault tolerance: node crash +\n" +
				"recovery from periodic SRS checkpoints\n\n" +
				experiments.FormatFault(res), nil
		},
		csv: func() (string, error) {
			res, err := experiments.RunFault(experiments.DefaultFaultConfig())
			if err != nil {
				return "", err
			}
			t := &experiments.Table{Header: []string{"interval_panels", "total_s", "lost_work_s", "ckpt_write_s", "restore_s", "recoveries"}}
			for _, r := range res {
				t.Add(fmt.Sprint(r.Interval), fmt.Sprint(r.Total), fmt.Sprint(r.LostWork),
					fmt.Sprint(r.CkptWrite), fmt.Sprint(r.CkptRead), fmt.Sprint(r.Recoveries))
			}
			return t.CSV(), nil
		},
	},
	"chaos": {
		title: "extension — chaos study: completion and recovery vs node MTBF",
		run: func() (string, error) {
			cfg := experiments.DefaultChaosConfig()
			cfg.Seed = seedOr(cfg.Seed)
			res, err := experiments.RunChaos(cfg)
			if err != nil {
				return "", err
			}
			return "extension — chaos study: QR and EMAN under seeded node crashes,\n" +
				"completion time and recovery count vs node MTBF\n\n" +
				experiments.FormatChaos(res), nil
		},
		csv: func() (string, error) {
			cfg := experiments.DefaultChaosConfig()
			cfg.Seed = seedOr(cfg.Seed)
			res, err := experiments.RunChaos(cfg)
			if err != nil {
				return "", err
			}
			t := &experiments.Table{Header: []string{"workload", "mtbf_s", "completed", "total_s", "recoveries", "faults_injected", "faults_recovered", "detector_suspects", "service_retries"}}
			for _, r := range res {
				t.Add(r.Workload, fmt.Sprint(r.MTBF), fmt.Sprint(r.Completed), fmt.Sprint(r.Total),
					fmt.Sprint(r.Recoveries), fmt.Sprint(r.Injected), fmt.Sprint(r.Recovered),
					fmt.Sprint(r.Suspects), fmt.Sprint(r.Retries))
			}
			return t.CSV(), nil
		},
	},
	"soak": {
		title: "extension — chaos soak: invariant harness under a randomized mixed fault schedule",
		run: func() (string, error) {
			cfg := experiments.DefaultSoakConfig()
			cfg.Seed = seedOr(cfg.Seed)
			r, err := experiments.RunSoak(cfg)
			if err != nil {
				return "", err
			}
			report := "extension — chaos soak: metascheduler + recovery control plane under\n" +
				"randomized crashes, storms, partitions, outages and checkpoint corruption\n\n" +
				experiments.FormatSoak(r)
			if fail := experiments.SoakFailure([]*chaossoak.Result{r}); fail != "" {
				return "", fmt.Errorf("soak failed: %s\n\n%s", fail, report)
			}
			return report, nil
		},
		csv: func() (string, error) {
			cfg := experiments.DefaultSoakConfig()
			cfg.Seed = seedOr(cfg.Seed)
			r, err := experiments.RunSoak(cfg)
			if err != nil {
				return "", err
			}
			t := &experiments.Table{Header: []string{"class", "jobs", "done", "failed", "quarantined", "mean_turnaround_s", "mean_requeues"}}
			for _, c := range r.PerClass {
				t.Add(c.Class, fmt.Sprint(c.Jobs), fmt.Sprint(c.Done), fmt.Sprint(c.Failed),
					fmt.Sprint(c.Quarantined), fmt.Sprint(c.MeanTurnaround), fmt.Sprintf("%.2f", c.MeanRequeues))
			}
			return t.CSV(), nil
		},
	},
	"soak-smoke": {
		title: "CI — compressed multi-seed chaos soak (fails on any invariant violation)",
		run: func() (string, error) {
			seeds := []int64{1, 2, 3}
			if s := seedOr(0); s != 0 {
				seeds = []int64{s}
			}
			results, err := experiments.RunSoakSmoke(seeds)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			b.WriteString("CI — compressed chaos soak, one run per seed\n")
			for _, r := range results {
				b.WriteString("\n")
				b.WriteString(experiments.FormatSoak(r))
			}
			if fail := experiments.SoakFailure(results); fail != "" {
				return "", fmt.Errorf("soak smoke failed: %s\n\n%s", fail, b.String())
			}
			return b.String(), nil
		},
	},
	"validation": {
		title: "§1/§4.2 — MicroGrid-vs-MacroGrid cross-validation of the swap scenario",
		run: func() (string, error) {
			r, err := experiments.RunValidation(experiments.DefaultFig4Config())
			if err != nil {
				return "", err
			}
			return "§1/§4.2 — MicroGrid-vs-MacroGrid cross-validation of the swap scenario\n\n" +
				experiments.FormatValidation(r), nil
		},
	},
	"weather": {
		title: "ablation — NWS forecasts vs mid-spike samples for migration decisions",
		run: func() (string, error) {
			cfg := experiments.DefaultWeatherConfig()
			cfg.Seed = seedOr(cfg.Seed)
			res, err := experiments.RunWeather(cfg)
			if err != nil {
				return "", err
			}
			return "ablation — why migration decisions use NWS forecasts: bursty WAN\n" +
				"cross traffic, decisions sampled mid-spike vs a time-averaged oracle\n\n" +
				experiments.FormatWeather(res), nil
		},
	},
	"economy": {
		title: "extension — Grid economies: commodities market vs auctions",
		run: func() (string, error) {
			cfg := experiments.DefaultEconomyConfig()
			cfg.Seed = seedOr(cfg.Seed)
			res, err := experiments.RunEconomy(cfg)
			if err != nil {
				return "", err
			}
			return "extension (paper conclusion, cites G-commerce [24]) — Grid economies:\n" +
				"commodities market vs auctions under fluctuating demand\n\n" +
				experiments.FormatEconomy(res), nil
		},
	},
	"scale": {
		title:   "extension — sharded-kernel scaling curve on the 10k-node synthetic grid (wall-clock; excluded from 'all')",
		skipAll: true,
		run: func() (string, error) {
			vs, err := experiments.RunScaleCurve(seedOr(1))
			if err != nil {
				return "", err
			}
			return "extension — sharded multi-site kernel: scaling curve on the 10k-node\n" +
				"synthetic grid (single kernel vs conservatively synchronized shards)\n\n" +
				experiments.FormatScale(vs), nil
		},
	},
	"scale-smoke": {
		title: "CI — shard-equivalence smoke: seeded chaos/contention/soak traces under -shards N",
		run: func() (string, error) {
			out, err := experiments.RunScaleSmoke(seedOr(0))
			if err != nil {
				return "", err
			}
			return "CI — shard-equivalence smoke: every line below (and the replayed\n" +
				"-trace-jsonl stream) is byte-identical for any -shards N\n\n" + out, nil
		},
	},
	"serve": {
		title: "extension — serving: front-door request stream over the broker fleet, rate x routing-policy sweep",
		run: func() (string, error) {
			cfg := experiments.DefaultServeConfig()
			cfg.Seed = seedOr(cfg.Seed)
			res, err := experiments.RunServe(cfg)
			if err != nil {
				return "", err
			}
			return "extension — serving: an open-loop request stream through the front\n" +
				"door (QoS classes int/batch/bulk) onto a lopsided 8/4/2-node broker\n" +
				"fleet, swept over arrival rate x routing policy\n\n" +
				experiments.FormatServe(res), nil
		},
		csv: func() (string, error) {
			cfg := experiments.DefaultServeConfig()
			cfg.Seed = seedOr(cfg.Seed)
			res, err := experiments.RunServe(cfg)
			if err != nil {
				return "", err
			}
			return experiments.ServeClassTable(res).CSV(), nil
		},
	},
	"serve-smoke": {
		title: "CI — compressed multi-seed serving cell (fails on any conservation violation)",
		run: func() (string, error) {
			seeds := []int64{1, 2, 3}
			if s := seedOr(0); s != 0 {
				seeds = []int64{s}
			}
			return experiments.RunServeSmoke(seeds)
		},
	},
	"contention": {
		title: "extension — metascheduler: contention-aware multi-application stream",
		run: func() (string, error) {
			cfg := experiments.DefaultContentionConfig()
			cfg.Seed = seedOr(cfg.Seed)
			res, err := experiments.RunContention(cfg)
			if err != nil {
				return "", err
			}
			return "extension — metascheduler: a contended multi-application job stream\n" +
				"(QR + task farms) under admission control, leases and preemptive\n" +
				"rescheduling, swept over arrival rate x queue policy\n\n" +
				experiments.FormatContention(res), nil
		},
		csv: func() (string, error) {
			cfg := experiments.DefaultContentionConfig()
			cfg.Seed = seedOr(cfg.Seed)
			res, err := experiments.RunContention(cfg)
			if err != nil {
				return "", err
			}
			return experiments.ContentionTable(res).CSV(), nil
		},
	},
}

// RunFaultSpec runs the QR workload under an explicit fault schedule (the
// gradsim -faults flag; see faultinject.ParseSpec for the grammar) and
// returns a report with the executed timeline and the recovery summary.
func RunFaultSpec(spec string) (string, error) {
	events, err := faultinject.ParseSpec(spec)
	if err != nil {
		return "", err
	}
	cfg := experiments.DefaultChaosConfig()
	cfg.Seed = seedOr(cfg.Seed)
	r, timeline, err := experiments.RunChaosSpec(cfg, events)
	if err != nil {
		return "", err
	}
	return "fault injection — QR workload under explicit schedule\n\n" +
		"schedule:\n" + timeline + "\n" +
		experiments.FormatChaos([]experiments.ChaosResult{*r}), nil
}

// RunJobStream pushes an explicit submission stream (the gradsim -jobs
// flag; see metasched.ParseStream for the grammar) through the
// metascheduler broker on the QR testbed and returns the per-job outcome
// table.
func RunJobStream(stream string) (string, error) {
	entries, err := metasched.ParseStream(stream)
	if err != nil {
		return "", err
	}
	cfg := experiments.DefaultJobStreamConfig(entries)
	cfg.Seed = seedOr(cfg.Seed)
	recs, err := experiments.RunJobStream(cfg)
	if err != nil {
		return "", err
	}
	return "job stream — metascheduler broker on the QR testbed\n\n" +
		"stream: " + metasched.FormatStream(entries) + "\n\n" +
		experiments.JobStreamTable(recs).String(), nil
}

// RunZoo schedules an explicit DAG-zoo spec (the gradsim -zoo flag; see
// listsched.ParseZoo for the grammar) with the named list-scheduling
// heuristic (the -heuristic flag) on the MacroGrid and returns the per-DAG
// makespan/SLR/utilization report.
func RunZoo(spec, heuristic string) (string, error) {
	return experiments.RunZoo(spec, heuristic, seedOr(0))
}

// RunArrivals realizes an explicit serving workload (the gradsim -arrivals
// flag; see frontdoor.ParseArrivals for the grammar) through the front door
// on the standard fleet, routed by the named policy (the -route flag), and
// returns the outcome report.
func RunArrivals(spec, route string) (string, error) {
	return experiments.RunArrivals(spec, route, seedOr(0))
}

// RunExperiment regenerates one experiment by name and returns its
// formatted report.
func RunExperiment(name string) (string, error) {
	e, ok := registry[name]
	if !ok {
		return "", fmt.Errorf("grads: unknown experiment %q (have: %s)",
			name, strings.Join(Experiments(), ", "))
	}
	return e.run()
}

// RunExperimentCSV regenerates one tabular experiment as CSV. Experiments
// without a CSV form return an error listing those that have one.
func RunExperimentCSV(name string) (string, error) {
	e, ok := registry[name]
	if !ok || e.csv == nil {
		var names []string
		for _, info := range Describe() {
			if info.HasCSV {
				names = append(names, info.Name)
			}
		}
		return "", fmt.Errorf("grads: no CSV form for %q (have: %s)", name, strings.Join(names, ", "))
	}
	return e.csv()
}

// RunAll regenerates every experiment except the wall-clock ones (skipAll),
// concatenating the reports. Its output is part of the determinism contract:
// same seeds, same bytes.
func RunAll() (string, error) {
	var b strings.Builder
	for _, name := range Experiments() {
		if registry[name].skipAll {
			continue
		}
		out, err := RunExperiment(name)
		if err != nil {
			return b.String(), fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(&b, "==== %s ====\n\n%s\n", name, out)
	}
	return b.String(), nil
}
