// Quickstart: build a two-site Grid from a DML description, start the
// weather service, schedule a four-component workflow with the GrADS
// workflow scheduler, and execute the schedule on the emulator.
package main

import (
	"fmt"
	"log"

	"grads/internal/core"
	"grads/internal/experiments"
	"grads/internal/nws"
	"grads/internal/perfmodel"
	"grads/internal/simcore"
	"grads/internal/topology"
)

const gridDML = `
# A small heterogeneous grid: a fast cluster and a slow one.
site Fast bw=1Gb lat=100us
site Slow bw=100Mb lat=100us
cluster fast count=4 site=Fast arch=ia32 mhz=1700 fpc=0.8 mem=1024
cluster slow count=8 site=Slow arch=ia32 mhz=450  fpc=0.4 mem=256
wan Fast Slow bw=10Mb lat=20ms
`

func main() {
	sim := simcore.New(42)
	grid, err := topology.ParseDML(sim, gridDML)
	if err != nil {
		log.Fatal(err)
	}
	weather := nws.Start(sim, grid, 10)

	// A diamond workflow: prepare -> (analyze-a, analyze-b) -> combine.
	// Component models are least-squares fits of small-run profiles, the
	// way GrADS builds them (§3.2 of the paper).
	model := func(name string, flopsPerUnit float64) *perfmodel.ComponentModel {
		var samples []perfmodel.Sample
		for n := 1.0; n <= 5; n++ {
			samples = append(samples, perfmodel.Sample{N: n, Flops: flopsPerUnit * n})
		}
		m, err := perfmodel.FitComponent(name, samples, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	wf := core.NewWorkflow()
	prep := wf.Add(&core.Component{
		Name: "prepare", Model: model("prepare", 2e9), ProblemSize: 1, OutputBytes: 50e6,
	})
	a := wf.Add(&core.Component{
		Name: "analyze-a", Model: model("analyze-a", 40e9), ProblemSize: 1, OutputBytes: 5e6,
	}, prep)
	b := wf.Add(&core.Component{
		Name: "analyze-b", Model: model("analyze-b", 30e9), ProblemSize: 1, OutputBytes: 5e6,
	}, prep)
	wf.Add(&core.Component{
		Name: "combine", Model: model("combine", 1e9), ProblemSize: 1,
	}, a, b)

	sched, err := core.NewScheduler(grid, weather).Schedule(wf, grid.Nodes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler picked %q with predicted makespan %.1f s\n", sched.Heuristic, sched.Makespan)
	for i, asg := range sched.Assignments {
		fmt.Printf("  %-10s -> %-7s [%6.1f, %6.1f]\n",
			wf.Components[i].Name, asg.Node.Name(), asg.Start, asg.Finish)
	}

	// Execute the schedule on the emulator and compare.
	weather.Stop()
	env := &experiments.Env{Sim: sim, Grid: grid}
	measured, err := experiments.ExecuteSchedule(env, wf, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed on the emulator in %.1f s of virtual time\n", measured)
}
