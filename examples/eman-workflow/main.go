// eman-workflow reproduces §3.3: the EMAN 3-D reconstruction refinement
// workflow (Figure 2) is scheduled onto the heterogeneous MacroGrid with
// the GrADS workflow scheduler (performance-model ranks + the min-min,
// max-min and sufferage heuristics) and then executed on the emulator.
package main

import (
	"fmt"
	"log"

	"grads/internal/apps"
	"grads/internal/core"
	"grads/internal/experiments"
	"grads/internal/topology"
)

func main() {
	cfg := experiments.DefaultEMANConfig()
	wf, err := apps.EMANWorkflow(cfg.Particles, cfg.Width)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EMAN refinement workflow (Figure 2):")
	fmt.Print(experiments.FormatEMANDag(wf))
	expanded := wf.Expand()
	fmt.Printf("\nexpanded to %d schedulable components (%d-way parallel classification)\n\n",
		expanded.Len(), cfg.Width)

	env := experiments.NewEnv(cfg.Seed, topology.MacroGrid, "eman", 0)
	s := core.NewScheduler(env.Grid, nil)
	for _, h := range core.Heuristics {
		sched, err := s.ScheduleWith(h, expanded, env.Grid.Nodes())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s predicted makespan %8.1f s\n", h, sched.Makespan)
	}
	best, err := s.Schedule(expanded, env.Grid.Nodes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best-of-3  %q wins\n\n", best.Heuristic)

	sites := map[string]int{}
	archs := map[topology.Arch]int{}
	for _, a := range best.Assignments {
		sites[a.Node.Site().Name]++
		archs[a.Node.Spec.Arch]++
	}
	fmt.Printf("component placements by site: %v\n", sites)
	fmt.Printf("component placements by arch: %v (heterogeneous, as demonstrated at SC2003)\n", archs)

	measured, err := experiments.ExecuteSchedule(env, expanded, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted schedule on the emulator: makespan %.1f s (predicted %.1f s)\n",
		measured, best.Makespan)

	fmt.Println("\nschedule (Gantt):")
	fmt.Print(core.FormatGantt(expanded, best, 72))
}
