// vgrid-fault demonstrates the two forward-looking capabilities the paper's
// conclusion previews for VGrADS: the application requests a *virtual Grid*
// (a Cluster-class resource aggregate) instead of naming machines, runs the
// QR factorization on it with periodic SRS checkpoints — and when one of
// the vgrid's nodes crashes mid-run, the application manager rolls back to
// the last committed checkpoint and finishes on the surviving resources.
package main

import (
	"fmt"
	"log"

	"grads/internal/appmgr"
	"grads/internal/apps"
	"grads/internal/experiments"
	"grads/internal/simcore"
	"grads/internal/topology"
	"grads/internal/vgrid"
)

func main() {
	env := experiments.NewEnv(1, topology.QRTestbed, "qr", 10)

	// Ask for a cluster of at least 4 IA-32 nodes with 512 MB or more —
	// the vgrid finder decides which concrete machines that means.
	finder := vgrid.NewFinder(env.Grid, env.GIS, env.Weather)
	vg, err := finder.Find(vgrid.Spec{
		Name:     "qr-cluster",
		Kind:     vgrid.Cluster,
		MinNodes: 4,
		MaxNodes: 8,
		Arch:     topology.ArchIA32,
		MinMemMB: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vgrid %q bound to %d nodes at %s (lock-step rate %.2f Gflop/s)\n",
		vg.Spec.Name, len(vg.Nodes), vg.Nodes[0].Site().Name, vg.Rate/1e9)

	qr, err := apps.NewQR(env.Grid, env.RSS, env.Binder, env.Weather, 6000, 100)
	if err != nil {
		log.Fatal(err)
	}
	qr.CheckpointEvery = 10 // periodic fault-tolerance checkpoints
	mgr := appmgr.New(env.Sim, env.Grid, env.Binder, env.Weather)
	mgr.RSS = env.RSS
	mgr.NextNodes = vg.Nodes // run inside the vgrid

	// Crash one vgrid node 400 s after the application starts.
	env.Sim.Spawn("chaos", func(p *simcore.Proc) {
		for qr.DonePanels() == 0 {
			if p.Sleep(1) != nil {
				return
			}
		}
		if p.Sleep(400) != nil {
			return
		}
		victim := qr.CurNodes()[0]
		if qr.FailCurrentNode(0) > 0 {
			fmt.Printf("[%8.1f] node %s FAILED (panel %d of %d done, last checkpoint at %d)\n",
				p.Now(), victim.Name(), qr.DonePanels(), qr.Panels(), env.RSS.ResumeMarker())
		}
	})

	env.Sim.Spawn("user", func(p *simcore.Proc) {
		rep, err := mgr.Execute(p, qr, env.Grid.Nodes())
		env.Weather.Stop()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncompleted in %.1f s: %d segment(s), %d failure(s) survived\n",
			rep.Total, rep.Runs, rep.Failures)
		fmt.Printf("  lost work:          %8.1f s\n", rep.Sum(appmgr.PhaseLostWork, 0))
		fmt.Printf("  checkpoint writes:  %8.1f s\n", rep.Sum(appmgr.PhaseCkptWrite, 0))
		fmt.Printf("  checkpoint restore: %8.1f s\n", rep.Sum(appmgr.PhaseCkptRead, 0))
		fmt.Printf("  final resources:   ")
		for _, n := range qr.CurNodes() {
			fmt.Printf(" %s", n.Name())
		}
		fmt.Println()
	})
	env.Sim.Run()
}
