// qr-migration walks through one §4.1 stop/migrate/restart episode end to
// end: a ScaLAPACK QR factorization starts on the (faster) UTK cluster, an
// artificial load degrades one node five minutes in, the contract monitor
// detects the violation, the rescheduler finds migration profitable, and
// the application checkpoints, moves to UIUC, and finishes there.
package main

import (
	"fmt"
	"log"

	"grads/internal/appmgr"
	"grads/internal/apps"
	"grads/internal/autopilot"
	"grads/internal/experiments"
	"grads/internal/rescheduler"
	"grads/internal/simcore"
	"grads/internal/topology"
)

func main() {
	const n = 10000
	env := experiments.NewEnv(1, topology.QRTestbed, "qr", 10)
	qr, err := apps.NewQR(env.Grid, env.RSS, env.Binder, env.Weather, n, 100)
	if err != nil {
		log.Fatal(err)
	}
	mgr := appmgr.New(env.Sim, env.Grid, env.Binder, env.Weather)
	mgr.RSS = env.RSS
	resch := rescheduler.New(env.Grid, env.Weather)

	contract := &autopilot.Contract{
		Name:       "qr",
		Predicted:  autopilot.Sensor(qr.PredictedPanelSensor()),
		Actual:     autopilot.Sensor(qr.ActualPanelSensor()),
		UpperLimit: 1.5,
	}
	mon := autopilot.NewMonitor(env.Sim, contract, 15)
	mon.OnViolation = func(v autopilot.Violation) bool {
		fmt.Printf("[%8.1f] contract violation: ratio %.2f (avg %.2f, fuzzy severity %.2f)\n",
			v.Time, v.Ratio, v.AvgRatio, v.Severity)
		d := resch.Evaluate(qr, qr.CurNodes(), rescheduler.SiteCandidates(env.Grid.Nodes()))
		fmt.Printf("[%8.1f] rescheduler: remaining here %.0fs, on %s %.0fs, migration cost %.0fs -> %s\n",
			env.Sim.Now(), d.CurrentRemaining, d.Target[0].Site().Name,
			d.TargetRemaining, d.MigrationCost, d.Reason)
		if !d.Migrate {
			return false
		}
		mgr.NextNodes = d.Target
		env.RSS.RequestStop(len(qr.CurNodes()))
		return true
	}
	mon.Start()

	// The artificial load lands on the first scheduled node 300 s after
	// the application starts making progress.
	env.Sim.Spawn("load", func(p *simcore.Proc) {
		for qr.DonePanels() == 0 {
			if p.Sleep(1) != nil {
				return
			}
		}
		if p.Sleep(300) != nil {
			return
		}
		node := qr.CurNodes()[0]
		node.CPU.SetExternalLoad(1)
		fmt.Printf("[%8.1f] artificial load introduced on %s\n", p.Now(), node.Name())
	})

	env.Sim.Spawn("user", func(p *simcore.Proc) {
		rep, err := mgr.Execute(p, qr, env.Grid.Nodes())
		mon.Stop()
		env.Weather.Stop()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nQR N=%d finished in %.1f s across %d execution segment(s)\n",
			n, rep.Total, rep.Runs)
		for _, ph := range rep.Phases {
			fmt.Printf("  run %d  %-22s %8.1f s\n", ph.Run, ph.Name, ph.Duration)
		}
		fmt.Println("\ncontract viewer (performance contract validation activity):")
		trace := mon.Trace()
		if len(trace) > 24 {
			trace = trace[len(trace)-24:]
		}
		fmt.Print(autopilot.FormatTrace(trace, 40))
	})
	env.Sim.Run()
}
