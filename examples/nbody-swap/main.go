// nbody-swap reproduces the §4.2.2 demonstration interactively: an N-body
// simulation runs with three active processes at UTK and three inactive
// ones at UIUC on the MicroGrid virtual Grid; competitive load lands on one
// UTK machine at t=80 s, and the swapping rescheduler migrates all three
// working processes to UIUC.
package main

import (
	"fmt"
	"log"

	"grads/internal/apps"
	"grads/internal/mpi"
	"grads/internal/simcore"
	"grads/internal/swap"
	"grads/internal/topology"
)

func main() {
	sim := simcore.New(1)
	grid := topology.MicroGridTestbed(sim)
	var nodes []*topology.Node
	nodes = append(nodes, grid.Site("UTK").Nodes()...)
	nodes = append(nodes, grid.Site("UIUC").Nodes()...)
	world := mpi.NewWorld(sim, grid, "nbody", nodes)

	nb := apps.NewNBody(5700, 220)
	rt := swap.NewRuntime(world, 3, nb.StateBytes(3))
	policy := swap.GangPolicy{
		Gain:   1.2,
		SiteOf: func(phys int) string { return nodes[phys].Site().Name },
	}
	daemon := swap.StartDaemon(sim, rt, policy, 30, swap.NodeSpeed(nodes))

	sim.At(80, func() {
		grid.Site("UTK").Nodes()[1].CPU.SetExternalLoad(2)
		fmt.Printf("[%6.1f] two competitive processes started on %s\n",
			sim.Now(), grid.Site("UTK").Nodes()[1].Name())
	})

	rt.Run(sim, nb.Body(3), 220)
	sim.RunUntil(600)
	daemon.Stop()
	sim.RunUntil(600)
	if err := world.Err(); err != nil {
		log.Fatal(err)
	}

	for _, st := range rt.SwapTimes() {
		fmt.Printf("[%6.1f] process swapped\n", st)
	}
	fmt.Printf("\nactive set now on:")
	for _, phys := range rt.ActivePhys() {
		fmt.Printf(" %s", nodes[phys].Name())
	}
	fmt.Println()

	fmt.Println("\niteration progress (every 20 iterations):")
	for _, m := range rt.Progress() {
		if m.Iter%20 == 0 {
			fmt.Printf("  iter %3d at t=%6.1f s\n", m.Iter, m.Time)
		}
	}
}
