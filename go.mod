module grads

go 1.22
