package grads

import (
	"strings"
	"testing"
)

func TestExperimentsList(t *testing.T) {
	names := Experiments()
	if len(names) < 8 {
		t.Fatalf("only %d experiments registered: %v", len(names), names)
	}
	for _, want := range []string{"fig3", "fig3-decisions", "fig4", "eman", "heuristics",
		"swap-policies", "opportunistic", "fault", "validation"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("experiment %q missing from %v", want, names)
		}
	}
	// Sorted.
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("experiment list not sorted: %v", names)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("figure-9000"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := RunExperimentCSV("eman-dag"); err == nil {
		t.Fatal("CSV for a non-tabular experiment accepted")
	}
}

func TestRunExperimentProducesReport(t *testing.T) {
	out, err := RunExperiment("eman-dag")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "classesbymra") {
		t.Fatalf("eman-dag output missing components:\n%s", out)
	}
}

func TestRunExperimentCSVWellFormed(t *testing.T) {
	out, err := RunExperimentCSV("fault")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("fault CSV has %d lines", len(lines))
	}
	cols := strings.Count(lines[0], ",")
	for i, l := range lines {
		if strings.Count(l, ",") != cols {
			t.Fatalf("line %d has wrong column count: %q", i, l)
		}
	}
}
